// flexnet_lint's own contract, pinned against the fixture corpus under
// tests/lint_fixtures/: each rule L1–L5 has at least one violating fixture
// (nonzero exit, file:line diagnostic naming the rule) and one clean
// fixture (exit 0), the `flexnet-lint: allow(RULE)` escape hatch
// suppresses without hiding the suppression count, the --json report
// parses and mirrors the stderr diagnostics, and — the point of the whole
// tool — the live tree passes at zero violations.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

#include "runner/json_parser.hpp"

namespace flexnet {
namespace {

std::string lint_bin() { return std::string(FLEXNET_BIN_DIR) + "/flexnet_lint"; }

std::string fixture(const std::string& name) {
  return std::string(FLEXNET_SOURCE_DIR) + "/tests/lint_fixtures/" + name;
}

struct CmdResult {
  int exit_code = -1;
  std::string output;  // stdout + stderr interleaved
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult result;
  std::FILE* pipe = popen((cmd + " 2>&1").c_str(), "r");
  if (pipe == nullptr) return result;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
  const int status = pclose(pipe);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

CmdResult lint(const std::string& args) {
  return run_cmd(lint_bin() + " " + args);
}

// ---------------------------------------------------------------------------
// Per-rule fixtures: violating trees exit 1 with a file:line diagnostic
// tagged with the rule id; clean trees exit 0.

struct RuleCase {
  const char* rule;
  const char* broken;     ///< fixture directory expected to violate
  const char* clean;      ///< fixture directory expected to pass
  const char* fragment;   ///< substring the diagnostic must carry
  const char* site;       ///< file:line prefix of one expected finding
};

const RuleCase kRuleCases[] = {
    {"L1", "l1_broken", "l1_clean", "mystery_knob", "src/sim/config.hpp:17:"},
    {"L2", "l2_broken", "l2_clean", "jitter", "src/sim/simulator.hpp:14:"},
    {"L3", "l3_broken", "l3_clean", "rand()", "src/sim/hot_path.cpp:21:"},
    // Thread primitives in the simulation core: banned everywhere under
    // src/sim/ except the sanctioned barrier TU src/sim/domains.*.
    {"L3", "l3_threads_broken", "l3_threads_clean",
     "confined to src/sim/domains.*", "src/sim/stepper.cpp:8:"},
    {"L4", "l4_broken", "l4_clean", "phantom_traffic",
     "src/traffic/phantom.cpp:5:"},
    {"L5", "l5_broken", "l5_clean", "read-only", "src/sim/hooks.cpp:22:"},
};

TEST(FlexnetLint, ViolatingFixturesFailWithFileLineDiagnostics) {
  for (const RuleCase& c : kRuleCases) {
    const CmdResult r = lint("--root " + fixture(c.broken));
    EXPECT_EQ(r.exit_code, 1) << c.rule << "\n" << r.output;
    EXPECT_NE(r.output.find(std::string("[") + c.rule + "]"),
              std::string::npos)
        << c.rule << "\n" << r.output;
    EXPECT_NE(r.output.find(c.fragment), std::string::npos)
        << c.rule << "\n" << r.output;
    EXPECT_NE(r.output.find(c.site), std::string::npos)
        << c.rule << " diagnostics must be file:line anchored\n" << r.output;
  }
}

TEST(FlexnetLint, CleanFixturesPass) {
  for (const RuleCase& c : kRuleCases) {
    const CmdResult r = lint("--root " + fixture(c.clean));
    EXPECT_EQ(r.exit_code, 0) << c.rule << "\n" << r.output;
    EXPECT_NE(r.output.find("0 violation(s)"), std::string::npos)
        << c.rule << "\n" << r.output;
  }
}

TEST(FlexnetLint, FlowControlAxisRegistrationsAreChecked) {
  // The L4 dead-registration rule covers the flow_control and buffer_mgmt
  // registry families exactly like the four original ones.
  const CmdResult broken = lint("--root " + fixture("l4_broken"));
  EXPECT_EQ(broken.exit_code, 1) << broken.output;
  EXPECT_NE(broken.output.find("dead_flow"), std::string::npos)
      << broken.output;
  EXPECT_NE(broken.output.find("dead_backpressure"), std::string::npos)
      << broken.output;
  EXPECT_NE(broken.output.find("src/buffers/dead_axis.cpp:6:"),
            std::string::npos)
      << "diagnostics must anchor the registration site\n" << broken.output;
  EXPECT_NE(broken.output.find("src/buffers/dead_axis.cpp:11:"),
            std::string::npos)
      << broken.output;
}

TEST(FlexnetLint, RuleFilterRunsOnlySelectedRules) {
  // The L3-broken tree is clean under every other rule.
  const CmdResult r = lint("--root " + fixture("l3_broken") +
                           " --rules L1,L2,L4,L5");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const CmdResult only = lint("--root " + fixture("l3_broken") + " --rules L3");
  EXPECT_EQ(only.exit_code, 1) << only.output;
}

// ---------------------------------------------------------------------------
// Escape hatch.

TEST(FlexnetLint, AllowAnnotationSuppressesButIsCounted) {
  const CmdResult r = lint("--root " + fixture("l3_allowed"));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("suppressed by allow annotations"),
            std::string::npos)
      << r.output;
}

TEST(FlexnetLint, AllowedFindingsStillCountedInJsonReport) {
  const std::string report = ::testing::TempDir() + "lint_allowed.json";
  std::remove(report.c_str());
  const CmdResult r =
      lint("--root " + fixture("l3_allowed") + " --json " + report);
  EXPECT_EQ(r.exit_code, 0) << r.output;

  std::FILE* f = std::fopen(report.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(text, &doc, &error)) << error;
  EXPECT_EQ(doc.find("suppressed")->number, 1.0);
  EXPECT_TRUE(doc.find("violations")->array.empty());
}

// ---------------------------------------------------------------------------
// JSON report.

TEST(FlexnetLint, JsonReportParsesAndMirrorsDiagnostics) {
  const std::string report = ::testing::TempDir() + "lint_report.json";
  std::remove(report.c_str());
  const CmdResult r =
      lint("--root " + fixture("l3_broken") + " --json " + report);
  EXPECT_EQ(r.exit_code, 1) << r.output;

  std::FILE* f = std::fopen(report.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(text, &doc, &error)) << error;
  EXPECT_EQ(doc.find("tool")->string, "flexnet_lint");
  ASSERT_TRUE(doc.has("violations"));
  const std::vector<JsonValue>& violations = doc.find("violations")->array;
  ASSERT_EQ(violations.size(), 4u);
  for (const JsonValue& v : violations) {
    EXPECT_EQ(v.find("file")->string, "src/sim/hot_path.cpp");
    EXPECT_GT(v.find("line")->number, 0.0);
    EXPECT_EQ(v.find("rule")->string, "L3");
    EXPECT_FALSE(v.find("message")->string.empty());
    // Every JSON violation also appeared as a file:line stderr line.
    const std::string anchor =
        v.find("file")->string + ":" +
        std::to_string(static_cast<int>(v.find("line")->number)) + ":";
    EXPECT_NE(r.output.find(anchor), std::string::npos) << anchor;
  }
}

// ---------------------------------------------------------------------------
// CLI contract.

TEST(FlexnetLint, ListRulesPrintsTheCatalog) {
  const CmdResult r = lint("--list-rules");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  for (const char* rule : {"L1", "L2", "L3", "L4", "L5"})
    EXPECT_NE(r.output.find(rule), std::string::npos) << rule;
}

TEST(FlexnetLint, UnknownRuleAndMissingRootAreUsageErrors) {
  EXPECT_EQ(lint("--rules L9").exit_code, 2);
  EXPECT_EQ(lint("--root /nonexistent/lint/root").exit_code, 2);
  EXPECT_EQ(lint("--frobnicate").exit_code, 2);
}

// ---------------------------------------------------------------------------
// The reason the tool exists: the shipped tree holds the invariants.

TEST(FlexnetLint, LiveTreePassesAtZeroViolations) {
  const CmdResult r = lint("--root " + std::string(FLEXNET_SOURCE_DIR));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find(" 0 violation(s)"), std::string::npos) << r.output;
}

}  // namespace
}  // namespace flexnet
