// Routing algorithm unit tests: option validity for MIN/VAL/PAR/UGAL/PB,
// Valiant trajectory bookkeeping, and Piggyback saturation sensing.
#include <gtest/gtest.h>

#include <map>

#include "core/vc_policy.hpp"
#include "routing/minimal.hpp"
#include "routing/par.hpp"
#include "routing/piggyback.hpp"
#include "routing/ugal.hpp"
#include "routing/valiant.hpp"
#include "topology/dragonfly.hpp"

namespace flexnet {
namespace {

constexpr LinkType kL = LinkType::kLocal;
constexpr LinkType kG = LinkType::kGlobal;

/// Congestion oracle with settable per-port occupancy.
class FakeOracle : public CongestionOracle {
 public:
  int port_occupancy(RouterId r, PortIndex p, bool) const override {
    const auto it = occ_.find({r, p});
    return it == occ_.end() ? 0 : it->second;
  }
  int vc_occupancy(RouterId r, PortIndex p, VcIndex, bool) const override {
    return port_occupancy(r, p, false);
  }
  void set(RouterId r, PortIndex p, int occ) { occ_[{r, p}] = occ; }

 private:
  std::map<std::pair<RouterId, PortIndex>, int> occ_;
};

Packet packet_at_injection(const Topology& topo, NodeId src, NodeId dst) {
  Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.vc_position = kInjectionPosition;
  (void)topo;
  return pkt;
}

/// Walks a packet along `routing`'s first option until ejection, verifying
/// each hop is a real link and the hop-type bookkeeping is consistent.
int walk_to_destination(const Topology& topo, RoutingAlgorithm& routing,
                        Packet pkt, Rng& rng) {
  RouterId at = topo.router_of_node(pkt.src);
  int hops = 0;
  std::vector<RouteOption> opts;
  while (true) {
    opts.clear();
    routing.route(pkt, at, rng, opts);
    EXPECT_FALSE(opts.empty());
    const RouteOption& opt = opts.front();
    if (opt.ejection) {
      EXPECT_EQ(at, topo.router_of_node(pkt.dst));
      return hops;
    }
    EXPECT_LT(opt.out_port, topo.num_network_ports(at));
    EXPECT_EQ(opt.hop_type, topo.port(at, opt.out_port).type);
    // Remaining-type bookkeeping must shrink to zero at the destination.
    at = topo.port(at, opt.out_port).neighbor;
    pkt.valiant = opt.valiant_after;
    pkt.valiant_reached = opt.valiant_reached_after;
    pkt.route_kind = opt.kind_after;
    pkt.vc_position = 0;
    ++pkt.hops;
    ++hops;
    EXPECT_LE(hops, 8) << "routing loop";
    if (hops > 8) return hops;
  }
}

TEST(MinimalRouting, ReachesEveryDestinationWithinDiameter) {
  const Dragonfly topo({2, 4, 2});
  MinimalRouting routing(topo);
  Rng rng(1);
  for (NodeId src = 0; src < topo.num_nodes(); src += 9) {
    for (NodeId dst = 0; dst < topo.num_nodes(); dst += 5) {
      if (topo.router_of_node(src) == topo.router_of_node(dst)) continue;
      const int hops = walk_to_destination(
          topo, routing, packet_at_injection(topo, src, dst), rng);
      EXPECT_LE(hops, topo.diameter());
    }
  }
}

TEST(MinimalRouting, SingleOptionNoEscape) {
  const Dragonfly topo({2, 4, 2});
  MinimalRouting routing(topo);
  Rng rng(1);
  std::vector<RouteOption> opts;
  routing.route(packet_at_injection(topo, 0, 50), 0, rng, opts);
  EXPECT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].kind_after, RouteKind::kMinimal);
}

TEST(ValiantRouting, ReachesDestinationThroughIntermediate) {
  const Dragonfly topo({2, 4, 2});
  ValiantRouting routing(topo);
  Rng rng(2);
  for (NodeId dst = 2; dst < topo.num_nodes(); dst += 7) {
    const int hops = walk_to_destination(
        topo, routing, packet_at_injection(topo, 0, dst), rng);
    EXPECT_LE(hops, 2 * topo.diameter());
  }
}

TEST(ValiantRouting, MarksNonminimalAndProvidesEscape) {
  const Dragonfly topo({2, 4, 2});
  ValiantRouting routing(topo);
  Rng rng(3);
  std::vector<RouteOption> opts;
  routing.route(packet_at_injection(topo, 0, 50), 0, rng, opts);
  ASSERT_GE(opts.size(), 1u);
  EXPECT_EQ(opts[0].kind_after, RouteKind::kNonminimal);
  if (!opts[0].valiant_reached_after) {
    ASSERT_EQ(opts.size(), 2u);
    EXPECT_TRUE(opts[1].is_escape);
    EXPECT_EQ(opts[1].valiant_after, kInvalidRouter);
  }
}

TEST(ValiantRouting, EscapePresentEvenWhenHopReachesIntermediate) {
  // The hop that would arrive at the Valiant router can itself be blocked
  // or inadmissible; the escape must still be offered (the wedge this
  // repository once had without it).
  const Dragonfly topo({2, 4, 2});
  ValiantRouting routing(topo);
  Rng rng(4);
  Packet pkt = packet_at_injection(topo, 0, 50);
  pkt.valiant = 2;  // same group as router 0: next local hop reaches it
  pkt.hops = 1;
  pkt.vc_position = 0;
  std::vector<RouteOption> opts;
  routing.route(pkt, 0, rng, opts);
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_TRUE(opts[0].valiant_reached_after);
  EXPECT_TRUE(opts[1].is_escape);
}

TEST(ValiantRouting, EscapeClearsTrajectory) {
  const Dragonfly topo({2, 4, 2});
  ValiantRouting routing(topo);
  Rng rng(5);
  Packet pkt = packet_at_injection(topo, 0, 50);
  pkt.valiant = 30;
  pkt.route_kind = RouteKind::kNonminimal;
  pkt.hops = 1;
  pkt.vc_position = 0;
  std::vector<RouteOption> opts;
  routing.route(pkt, 0, rng, opts);
  ASSERT_EQ(opts.size(), 2u);
  EXPECT_TRUE(opts[1].is_escape);
  EXPECT_EQ(opts[1].valiant_after, kInvalidRouter);
  // minCred accounts the *decision*: an escaped packet stays nonminimal.
  EXPECT_EQ(opts[1].kind_after, RouteKind::kNonminimal);
}

TEST(ParRouting, StaysMinimalWhenUncongested) {
  const Dragonfly topo({2, 4, 2});
  FakeOracle oracle;
  ParRouting routing(topo, oracle, 8, ParConfig{});
  Rng rng(6);
  std::vector<RouteOption> opts;
  routing.route(packet_at_injection(topo, 0, 50), 0, rng, opts);
  ASSERT_EQ(opts.size(), 1u);
  EXPECT_EQ(opts[0].kind_after, RouteKind::kMinimal);
}

TEST(ParRouting, SwitchesToValiantUnderCongestion) {
  const Dragonfly topo({2, 4, 2});
  FakeOracle oracle;
  // Saturate only the minimal path's first-hop port; Valiant alternatives
  // leaving through other ports then look attractive.
  oracle.set(0, topo.min_next_port(0, topo.router_of_node(50)), 500);
  ParRouting routing(topo, oracle, 8, ParConfig{});
  Rng rng(7);
  // Sample several destinations: the Valiant alternative port is random, so
  // q_min = q_val sometimes; with q_min >> threshold the switch must happen
  // when the sampled alternative is a different (empty) port.
  bool switched = false;
  for (int trial = 0; trial < 32 && !switched; ++trial) {
    std::vector<RouteOption> opts;
    routing.route(packet_at_injection(topo, 0, 50), 0, rng, opts);
    switched = opts.front().kind_after == RouteKind::kNonminimal;
  }
  EXPECT_TRUE(switched);
}

TEST(ParRouting, WindowClosesAfterLeavingSourceGroup) {
  const Dragonfly topo({2, 4, 2});
  FakeOracle oracle;
  for (PortIndex p = 0; p < topo.num_network_ports(8); ++p)
    oracle.set(8, p, 500);
  ParRouting routing(topo, oracle, 8, ParConfig{});
  Rng rng(8);
  Packet pkt = packet_at_injection(topo, 0, 50);  // src router 0 (group 0)
  pkt.hops = 2;
  pkt.vc_position = 1;
  // At router 8 (group 2), outside the source group: no more switching.
  std::vector<RouteOption> opts;
  routing.route(pkt, 8, rng, opts);
  EXPECT_EQ(opts.front().kind_after, RouteKind::kMinimal);
}

TEST(UgalRouting, ComparesWeightedQueues) {
  const Dragonfly topo({2, 4, 2});
  FakeOracle oracle;
  UgalRouting routing(topo, oracle, 8, UgalConfig{});
  Rng rng(9);
  std::vector<RouteOption> opts;
  routing.route(packet_at_injection(topo, 0, 50), 0, rng, opts);
  EXPECT_EQ(opts.front().kind_after, RouteKind::kMinimal);  // all empty
}

// --- Piggyback.

class PiggybackTest : public ::testing::Test {
 protected:
  PiggybackTest() : topo_({2, 4, 2}) {}

  PiggybackRouting make(bool per_vc, bool min_only = false) {
    PiggybackConfig cfg;
    cfg.per_vc = per_vc;
    cfg.min_only = min_only;
    return PiggybackRouting(topo_, oracle_, 8, cfg, {0, kInvalidVc});
  }

  Dragonfly topo_;
  FakeOracle oracle_;
};

TEST_F(PiggybackTest, IdleNetworkIsNeverSaturated) {
  auto pb = make(false);
  pb.update(0);
  for (RouterId r = 0; r < topo_.num_routers(); ++r)
    for (int j = 0; j < topo_.params().h; ++j)
      EXPECT_FALSE(pb.saturated(r, topo_.params().a - 1 + j,
                                MsgClass::kRequest));
}

TEST_F(PiggybackTest, UnbalancedGlobalPortSaturates) {
  auto pb = make(false);
  const PortIndex g0 = topo_.params().a - 1;
  oracle_.set(0, g0, 200);  // one hot global port, the other idle
  pb.update(0);
  EXPECT_TRUE(pb.saturated(0, g0, MsgClass::kRequest));
  EXPECT_FALSE(pb.saturated(0, g0 + 1, MsgClass::kRequest));
}

TEST_F(PiggybackTest, BalancedLoadIsNotSaturated) {
  auto pb = make(false);
  const PortIndex g0 = topo_.params().a - 1;
  oracle_.set(0, g0, 200);
  oracle_.set(0, g0 + 1, 200);  // both equally loaded: no outlier
  pb.update(0);
  EXPECT_FALSE(pb.saturated(0, g0, MsgClass::kRequest));
  EXPECT_FALSE(pb.saturated(0, g0 + 1, MsgClass::kRequest));
}

TEST_F(PiggybackTest, SaturationFloorSuppressesNoise) {
  auto pb = make(false);
  const PortIndex g0 = topo_.params().a - 1;
  oracle_.set(0, g0, 10);  // above 1.5x average but below 2 packets
  pb.update(0);
  EXPECT_FALSE(pb.saturated(0, g0, MsgClass::kRequest));
}

TEST_F(PiggybackTest, MisroutesWhenMinimalGlobalLinkSaturated) {
  auto pb = make(false);
  // Find the router owning the global link from group 0 toward group 1 and
  // saturate it; an injection at any group-0 router must then pick Valiant.
  PortIndex gport = kInvalidPort;
  const RouterId owner = topo_.global_link_owner(0, 1, gport);
  oracle_.set(owner, gport, 400);
  pb.update(0);
  Rng rng(10);
  Packet pkt;
  pkt.src = 2;  // a node of router 1 (group 0)
  pkt.dst = topo_.first_node_of_router(topo_.router_id(1, 0));  // group 1
  pkt.vc_position = kInjectionPosition;
  std::vector<RouteOption> opts;
  pb.route(pkt, topo_.router_of_node(pkt.src), rng, opts);
  EXPECT_EQ(opts.front().kind_after, RouteKind::kNonminimal);
}

TEST_F(PiggybackTest, RoutesMinimallyWhenClean) {
  auto pb = make(false);
  pb.update(0);
  Rng rng(11);
  Packet pkt;
  pkt.src = 2;
  pkt.dst = topo_.first_node_of_router(topo_.router_id(1, 0));
  pkt.vc_position = kInjectionPosition;
  std::vector<RouteOption> opts;
  pb.route(pkt, topo_.router_of_node(pkt.src), rng, opts);
  EXPECT_EQ(opts.front().kind_after, RouteKind::kMinimal);
}

TEST_F(PiggybackTest, NamesEncodeVariant) {
  EXPECT_EQ(make(false).name(), "pb-per-port");
  EXPECT_EQ(make(true).name(), "pb-per-vc");
  EXPECT_EQ(make(false, true).name(), "pb-per-port-min");
  EXPECT_EQ(make(true, true).name(), "pb-per-vc-min");
}

TEST(RoutingReferences, ReferencePathsMatchPaperRequirements) {
  const Dragonfly topo({2, 4, 2});
  EXPECT_EQ(MinimalRouting(topo).reference_path().to_string(), "lgl");
  EXPECT_EQ(ValiantRouting(topo).reference_path().to_string(), "lgllgl");
  FakeOracle oracle;
  EXPECT_EQ(ParRouting(topo, oracle, 8, ParConfig{}).reference_path().to_string(),
            "llgllgl");
}

}  // namespace
}  // namespace flexnet
