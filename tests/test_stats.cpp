#include "common/stats.hpp"

#include <gtest/gtest.h>

namespace flexnet {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.sum(), 40.0);
}

TEST(Accumulator, MergeEqualsSequential) {
  Accumulator a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double x = 0.37 * i - 3;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2);
  Accumulator b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Histogram, CountsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.5, 25.0}) h.add(x);
  EXPECT_EQ(h.accumulator().count(), 5);
  EXPECT_EQ(h.buckets()[0], 1);
  EXPECT_EQ(h.buckets()[1], 2);
  EXPECT_EQ(h.buckets()[9], 1);
  EXPECT_EQ(h.buckets().back(), 1);  // overflow
}

TEST(Histogram, QuantileMonotone) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i % 100));
  EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
  EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
  EXPECT_NEAR(h.quantile(0.5), 50.0, 3.0);
}

TEST(RateMeter, NormalizesPerNodePerCycle) {
  RateMeter meter;
  meter.add(800.0);
  EXPECT_DOUBLE_EQ(meter.rate(/*nodes=*/10, /*cycles=*/100), 0.8);
  meter.reset();
  EXPECT_DOUBLE_EQ(meter.rate(10, 100), 0.0);
}

}  // namespace
}  // namespace flexnet
