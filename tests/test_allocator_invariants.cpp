// Allocator invariants under re-request pruning.
//
// The batched allocator prunes repeat work aggressively: blocked committed
// heads park on the wake edges of their blocking resource (credit return,
// slot free, downstream send), blocked *uncommitted* heads park too when
// routing is draw-free, within-pass losers are masked out of later
// iterations, and sole-VC safe losers of a matched output skip the rest of
// the pass. Every one of those shortcuts is only legal if it never changes
// which grants happen — this suite pins the observable contracts:
//
//  * Accounting: every output arbitration of n contenders reports n
//    requests, one grant, and n-1 conflicts, so the telemetry identity
//    requests == grants + conflicts holds exactly no matter how much
//    repeat work the pruning removed.
//  * Liveness of the wake edges: a head that went to sleep on a full
//    downstream buffer (credit ledger) or a full DAMQ slot pool must be
//    re-armed by the credit-return / slot-free edge — a missed edge
//    strands the packet forever, so full drain of an oversubscribed burst
//    is the test.
//  * No starvation: with sustained random traffic, stopping injection must
//    drain the network completely; the packet that lost every arbitration
//    still gets its grant eventually.
//  * Near-saturation randomized grids (both buffer organizations, the
//    whole-packet flow-control schemes, several seeds) drain after
//    injection stops. Wormhole is exercised with one-shot bursts instead:
//    under *sustained* saturation it deadlocks in the seed engine already
//    (a packet strung across several routers extends the dependency chain
//    beyond what the safe-path argument covers), and this suite pins
//    allocator behavior, not that known scheme limit.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/config.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace flexnet {
namespace {

SimConfig loaded_config(const char* buffer_org, const char* flow_control,
                        double load) {
  SimConfig cfg;
  cfg.policy = "flexvc";
  cfg.vcs = "4/2";
  cfg.routing = "min";
  cfg.buffer_org = buffer_org;
  cfg.flow_control = flow_control;
  cfg.load = load;
  cfg.warmup = 300;
  cfg.measure = 600;
  return cfg;
}

/// Steps `net` until it is empty or `limit` cycles pass, starting at `*now`.
void drain(Network& net, Cycle* now, Cycle limit,
           const std::string& context) {
  const Cycle deadline = *now + limit;
  for (; *now < deadline && net.packets_in_network() > 0; ++*now) {
    net.step(*now);
  }
  ASSERT_EQ(net.packets_in_network(), 0)
      << context << ": network failed to drain (a blocked head was never "
      << "re-armed by its wake edge)";
}

// ---------------------------------------------------------------------------
// Accounting identity.

TEST(AllocatorInvariants, RequestsEqualGrantsPlusConflictsUnderPruning) {
  // Across pruning regimes: jsq keeps the draw-free fast path on (blocked
  // fresh heads sleep), random VC selection turns it off (route()-adjacent
  // RNG must keep being exercised), and damq/vct move the wake edges to
  // slot-free and per-flit boundaries. The identity must hold exactly in
  // every regime because each output arbitration posts its contender count
  // and its losers atomically, whether or not the contenders were pruned
  // down from a larger repeat-work set.
  struct Regime {
    const char* selection;
    const char* buffer_org;
    const char* flow_control;
  };
  const Regime regimes[] = {
      {"jsq", "static", "packet"},
      {"random", "static", "packet"},
      {"jsq", "damq", "packet"},
      {"jsq", "damq", "vct"},
      {"jsq", "static", "wormhole"},
  };
  for (const Regime& regime : regimes) {
    SimConfig cfg = loaded_config(regime.buffer_org, regime.flow_control,
                                  /*load=*/0.8);
    cfg.vc_selection = regime.selection;
    const std::string context = std::string(regime.selection) + "/" +
                                regime.buffer_org + "/" +
                                regime.flow_control;
    Simulator sim(cfg);
    sim.set_telemetry(true);
    const SimResult result = sim.run();
    EXPECT_FALSE(result.deadlock) << context;
    ASSERT_NE(sim.network(), nullptr) << context;
    const TelemetryCounters& telem = sim.network()->telemetry();
    EXPECT_GT(telem.total_requests(), 0) << context;
    EXPECT_EQ(telem.total_requests(),
              telem.total_grants() + telem.total_conflicts())
        << context;
  }
}

// ---------------------------------------------------------------------------
// Wake-edge liveness.

TEST(AllocatorInvariants, CreditReturnEdgeReArmsBlockedHeads) {
  // Hotspot burst: every node sends to one victim node, oversubscribing
  // the victim's routers and exhausting downstream credits, so most heads
  // commit and then sleep on the credit ledger. Progress from that point
  // on is driven purely by on_credit re-arms; a missed credit-return edge
  // leaves the network permanently occupied. Wormhole rides along here:
  // all-to-one dependencies form a tree (no cycle), so the burst must
  // drain under per-flit crediting too.
  for (const char* fc : {"packet", "wormhole"}) {
    SimConfig cfg = loaded_config("static", fc, /*load=*/0.0);
    Network net(cfg);
    const NodeId nodes = net.topology().num_nodes();
    const NodeId victim = nodes / 3;
    int injected = 0;
    for (NodeId n = 0; n < nodes; ++n) {
      if (n == victim) continue;
      Packet pkt;
      pkt.src = n;
      pkt.dst = victim;
      pkt.size = cfg.effective_packet_phits();
      pkt.cls = MsgClass::kRequest;
      pkt.created = 0;
      if (net.try_inject(n, pkt, 0)) ++injected;
    }
    ASSERT_GT(injected, static_cast<int>(nodes) / 2) << fc;
    Cycle now = 0;
    drain(net, &now, /*limit=*/50000,
          std::string("hotspot burst, static/") + fc);
    EXPECT_EQ(net.metrics().consumed_packets(), injected) << fc;
  }
}

TEST(AllocatorInvariants, SlotFreeEdgeReArmsBlockedHeadsUnderDamq) {
  // Same hotspot burst against DAMQ buffers, where admission additionally
  // gates on a shared slot pool: heads sleep until a slot frees. Run it
  // under vct as well — per-flit slot release multiplies the edges.
  for (const char* fc : {"packet", "vct"}) {
    SimConfig cfg = loaded_config("damq", fc, /*load=*/0.0);
    Network net(cfg);
    const NodeId nodes = net.topology().num_nodes();
    const NodeId victim = 2 * nodes / 3;
    int injected = 0;
    for (NodeId n = 0; n < nodes; ++n) {
      if (n == victim) continue;
      Packet pkt;
      pkt.src = n;
      pkt.dst = victim;
      pkt.size = cfg.effective_packet_phits();
      pkt.cls = MsgClass::kRequest;
      pkt.created = 0;
      if (net.try_inject(n, pkt, 0)) ++injected;
    }
    ASSERT_GT(injected, static_cast<int>(nodes) / 2) << fc;
    Cycle now = 0;
    drain(net, &now, /*limit=*/50000,
          std::string("hotspot burst, damq/") + fc);
    EXPECT_EQ(net.metrics().consumed_packets(), injected) << fc;
  }
}

// ---------------------------------------------------------------------------
// Starvation freedom.

TEST(AllocatorInvariants, SustainedTrafficNeverStarvesAPacket) {
  // Random all-to-all traffic at high offered load for a window, then
  // injection stops. Every packet that entered the network must come out:
  // consumed == injected after the drain, which fails if the arbiter or
  // the pruning masks can starve a contender indefinitely.
  SimConfig cfg = loaded_config("static", "packet", /*load=*/0.0);
  Network net(cfg);
  const NodeId nodes = net.topology().num_nodes();
  Rng rng(0xfeedULL);
  int injected = 0;
  Cycle now = 0;
  for (; now < 4000; ++now) {
    for (NodeId n = 0; n < nodes; ++n) {
      if (rng.next_below(10) >= 7) continue;  // ~0.7 packets/node/cycle
      Packet pkt;
      pkt.src = n;
      pkt.dst = static_cast<NodeId>(
          rng.next_below(static_cast<std::uint64_t>(nodes)));
      pkt.size = cfg.effective_packet_phits();
      pkt.cls = MsgClass::kRequest;
      pkt.created = now;
      if (net.try_inject(n, pkt, now)) ++injected;
    }
    net.step(now);
  }
  ASSERT_GT(injected, 0);
  drain(net, &now, /*limit=*/50000, "sustained random traffic");
  EXPECT_EQ(net.metrics().consumed_packets(), injected);
}

// ---------------------------------------------------------------------------
// Near-saturation randomized grids.

TEST(AllocatorInvariants, NearSaturationGridsDrainAfterInjectionStops) {
  struct Combo {
    const char* buffer_org;
    const char* flow_control;
  };
  // Whole-packet schemes only: sustained saturation deadlocks wormhole in
  // the seed engine (see the file comment); its wake edges are covered by
  // the one-shot burst tests above.
  const Combo combos[] = {
      {"static", "packet"},
      {"damq", "packet"},
      {"static", "vct"},
      {"damq", "vct"},
  };
  for (const Combo& combo : combos) {
    for (const std::uint64_t seed : {21ull, 22ull, 23ull}) {
      SimConfig cfg = loaded_config(combo.buffer_org, combo.flow_control,
                                    /*load=*/0.0);
      Network net(cfg);
      const NodeId nodes = net.topology().num_nodes();
      Rng rng(seed);
      const std::string context = std::string(combo.buffer_org) + "/" +
                                  combo.flow_control + " seed=" +
                                  std::to_string(seed);
      int injected = 0;
      Cycle now = 0;
      for (; now < 2000; ++now) {
        for (NodeId n = 0; n < nodes; ++n) {
          if (rng.next_below(20) >= 19) continue;  // ~0.95 offered load
          Packet pkt;
          pkt.src = n;
          pkt.dst = static_cast<NodeId>(
              rng.next_below(static_cast<std::uint64_t>(nodes)));
          pkt.size = cfg.effective_packet_phits();
          pkt.cls = MsgClass::kRequest;
          pkt.created = now;
          if (net.try_inject(n, pkt, now)) ++injected;
        }
        net.step(now);
      }
      ASSERT_GT(injected, 0) << context;
      drain(net, &now, /*limit=*/100000, context);
      EXPECT_EQ(net.metrics().consumed_packets(), injected) << context;
    }
  }
}

}  // namespace
}  // namespace flexnet
