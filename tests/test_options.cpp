#include "common/options.hpp"

#include <gtest/gtest.h>

namespace flexnet {
namespace {

TEST(Options, ParsesKeyValuesAndPositional) {
  const char* argv[] = {"prog", "load=0.6", "seed=3", "--verbose", "vcs=4/2"};
  const auto opts = Options::parse(5, argv);
  EXPECT_TRUE(opts.has("load"));
  EXPECT_DOUBLE_EQ(opts.get_double("load", 0.0), 0.6);
  EXPECT_EQ(opts.get_int("seed", 0), 3);
  EXPECT_EQ(opts.get("vcs", ""), "4/2");
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "--verbose");
}

TEST(Options, DefaultsWhenMissing) {
  const auto opts = Options::parse_string("");
  EXPECT_FALSE(opts.has("x"));
  EXPECT_EQ(opts.get("x", "d"), "d");
  EXPECT_EQ(opts.get_int("x", 7), 7);
  EXPECT_DOUBLE_EQ(opts.get_double("x", 1.5), 1.5);
  EXPECT_TRUE(opts.get_bool("x", true));
}

TEST(Options, ParsesBooleans) {
  const auto opts = Options::parse_string("a=1 b=true c=off d=no e=on");
  EXPECT_TRUE(opts.get_bool("a", false));
  EXPECT_TRUE(opts.get_bool("b", false));
  EXPECT_FALSE(opts.get_bool("c", true));
  EXPECT_FALSE(opts.get_bool("d", true));
  EXPECT_TRUE(opts.get_bool("e", false));
}

TEST(Options, SetOverrides) {
  auto opts = Options::parse_string("a=1");
  opts.set("a", "2");
  EXPECT_EQ(opts.get_int("a", 0), 2);
}

}  // namespace
}  // namespace flexnet
