// Cross-scheme differential battery for the flow-control axis.
//
// The flit-level schemes (wormhole, vct) share every data structure with
// the original packet-level engine; their correctness gate is built on
// three pillars:
//
//  1. Differential oracle — with phits_per_packet=1 a "flit" IS a packet:
//     head-flit routing, per-flit crediting, and wormhole's incremental
//     ledger claims all collapse onto the packet-mode events, so every
//     scheme must reproduce the packet-mode SimResult bit for bit,
//     per (series, load, seed), under either buffer-management scheme.
//  2. Property battery — randomized small grids under every scheme x
//     ledger combo uphold the structural invariants: ledgers never go
//     negative, buffer occupancy never exceeds capacity, every injected
//     flit is delivered (full drain), and body flits never interleave
//     within a VC (the always-on check in InputBuffer::add_phit aborts
//     the process if they do — simply running these grids exercises it).
//  3. Shard determinism — the shipped fig6_flow_control grid merged from
//     {2,3,7} shards is bit-identical to the serial run for every
//     scheme x ledger series, extending the engine's core guarantee to
//     the new axis.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "runner/checkpoint.hpp"
#include "runner/json_report.hpp"
#include "runner/shard.hpp"
#include "runner/sweep_runner.hpp"
#include "scenario/registry.hpp"
#include "scenario/suite.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"

namespace flexnet {
namespace {

SimConfig fast_config() {
  SimConfig cfg;
  cfg.warmup = 300;
  cfg.measure = 600;
  return cfg;
}

struct SchemeCombo {
  const char* fc;
  const char* bm;
};

const std::vector<SchemeCombo>& all_combos() {
  static const std::vector<SchemeCombo> combos = {
      {"packet", "credit"},   {"packet", "on_off"}, {"wormhole", "credit"},
      {"wormhole", "on_off"}, {"vct", "credit"},    {"vct", "on_off"},
  };
  return combos;
}

// ---------------------------------------------------------------------------
// Registry surface.

TEST(FlowControlRegistry, SchemesAndLedgersAreRegistered) {
  EXPECT_NO_THROW(flow_control_registry().at("packet"));
  EXPECT_NO_THROW(flow_control_registry().at("wormhole"));
  EXPECT_NO_THROW(flow_control_registry().at("vct"));
  EXPECT_NO_THROW(buffer_mgmt_registry().at("credit"));
  EXPECT_NO_THROW(buffer_mgmt_registry().at("on_off"));
  EXPECT_THROW(flow_control_registry().at("bufferless"),
               std::invalid_argument);
  EXPECT_THROW(buffer_mgmt_registry().at("ack_nack"), std::invalid_argument);
}

TEST(FlowControlRegistry, ValidateRejectsNegativeSegmentation) {
  SimConfig cfg;
  cfg.flow_control = "wormhole";
  cfg.phits_per_packet = -1;
  EXPECT_THROW(validate_config(cfg), std::invalid_argument);
  cfg.phits_per_packet = 4;
  EXPECT_NO_THROW(validate_config(cfg));
  cfg.flow_control = "vct";
  cfg.phits_per_packet = 0;  // inherits packet_size
  EXPECT_NO_THROW(validate_config(cfg));
}

TEST(FlowControlRegistry, NetworkResolvesConfiguredSchemes) {
  SimConfig cfg = fast_config();
  cfg.flow_control = "vct";
  cfg.buffer_mgmt = "on_off";
  Network net(cfg);
  EXPECT_EQ(net.flow_control(), FlowControl::kVct);
  EXPECT_EQ(net.buffer_mgmt(), BufferMgmt::kOnOff);
  SimConfig dflt = fast_config();
  Network net2(dflt);
  EXPECT_EQ(net2.flow_control(), FlowControl::kPacket);
  EXPECT_EQ(net2.buffer_mgmt(), BufferMgmt::kCredit);
}

// ---------------------------------------------------------------------------
// 1. Differential oracle: phits_per_packet=1 collapses every flit scheme
// onto packet mode. Grid: {uniform/min, bursty/min, uniform/val} x loads x
// seeds, FlexVC and baseline — enough series to cover routing revalidation,
// bursty injection, and both VC policies.

struct OracleSeries {
  const char* tag;
  const char* traffic;
  const char* routing;
  const char* policy;
  const char* vcs;
};

const std::vector<OracleSeries>& oracle_series() {
  static const std::vector<OracleSeries> series = {
      {"un-min-flexvc", "uniform", "min", "flexvc", "4/2"},
      {"un-min-baseline", "uniform", "min", "baseline", "2/1"},
      {"bursty-min-flexvc", "bursty", "min", "flexvc", "4/2"},
      {"un-val-flexvc", "uniform", "val", "flexvc", "4/2"},
  };
  return series;
}

SimResult run_oracle_point(const OracleSeries& s, const char* fc,
                           const char* bm, double load,
                           std::uint64_t seed) {
  SimConfig cfg = fast_config();
  cfg.traffic = s.traffic;
  cfg.routing = s.routing;
  cfg.policy = s.policy;
  cfg.vcs = s.vcs;
  cfg.flow_control = fc;
  cfg.buffer_mgmt = bm;
  cfg.phits_per_packet = 1;
  cfg.load = load;
  cfg.seed = seed;
  return Simulator(cfg).run();
}

TEST(FlowControlOracle, SinglePhitPacketsMatchPacketModeBitForBit) {
  for (const OracleSeries& s : oracle_series()) {
    for (const double load : {0.4, 0.9}) {
      for (const std::uint64_t seed : {1ull, 2ull}) {
        for (const char* bm : {"credit", "on_off"}) {
          const SimResult ref = run_oracle_point(s, "packet", bm, load, seed);
          for (const char* fc : {"wormhole", "vct"}) {
            const SimResult got = run_oracle_point(s, fc, bm, load, seed);
            EXPECT_TRUE(result_bits_equal(ref, got))
                << s.tag << " " << fc << "/" << bm << " load=" << load
                << " seed=" << seed
                << ": accepted " << got.accepted << " vs " << ref.accepted
                << ", latency " << got.avg_latency << " vs "
                << ref.avg_latency << ", consumed " << got.consumed_packets
                << " vs " << ref.consumed_packets;
          }
        }
      }
    }
  }
}

TEST(FlowControlOracle, ReactiveTrafficAlsoCollapsesAtOnePhit) {
  // Request-reply dependencies route through the reply VC segment; the
  // S=1 equivalence must hold there too.
  const OracleSeries s{"un-min-reactive", "uniform", "min", "flexvc",
                       "4/2+2/1"};
  for (const char* bm : {"credit", "on_off"}) {
    SimResult ref{};
    for (const char* fc : {"packet", "wormhole", "vct"}) {
      SimConfig cfg = fast_config();
      cfg.traffic = s.traffic;
      cfg.routing = s.routing;
      cfg.policy = s.policy;
      cfg.vcs = s.vcs;
      cfg.reactive = true;
      cfg.flow_control = fc;
      cfg.buffer_mgmt = bm;
      cfg.phits_per_packet = 1;
      cfg.load = 0.6;
      cfg.seed = 3;
      const SimResult got = Simulator(cfg).run();
      if (std::string(fc) == "packet") {
        ref = got;
        continue;
      }
      EXPECT_TRUE(result_bits_equal(ref, got))
          << fc << "/" << bm << " reactive: accepted " << got.accepted
          << " vs " << ref.accepted;
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Property battery.

/// Asserts the structural invariants on a network mid-flight or drained.
void expect_invariants(const Network& net, const std::string& context) {
  const Topology& topo = net.topology();
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    const int net_ports = topo.num_network_ports(r);
    for (PortIndex p = 0; p < net_ports; ++p) {
      const int occ = net.port_occupancy(r, p, /*min_only=*/false);
      const int min_occ = net.port_occupancy(r, p, /*min_only=*/true);
      EXPECT_GE(occ, 0) << context << ": ledger negative at router " << r
                        << " port " << p;
      EXPECT_GE(min_occ, 0) << context << ": minCred ledger negative at "
                            << "router " << r << " port " << p;
      EXPECT_LE(min_occ, occ) << context;
    }
    const int in_ports = net.num_input_ports(r);
    for (PortIndex p = 0; p < in_ports; ++p) {
      const InputBuffer& buf = net.input_buffer(r, p);
      EXPECT_LE(buf.occupancy(), buf.total_capacity())
          << context << ": input buffer over capacity at router " << r
          << " port " << p;
      EXPECT_LE(buf.shared_used(), buf.shared_capacity()) << context;
      int per_vc = 0;
      for (VcIndex vc = 0; vc < buf.num_vcs(); ++vc) {
        EXPECT_GE(buf.occupancy(vc), 0) << context;
        per_vc += buf.occupancy(vc);
      }
      EXPECT_EQ(per_vc, buf.occupancy()) << context;
    }
  }
}

void expect_fully_drained(const Network& net, const std::string& context) {
  const Topology& topo = net.topology();
  EXPECT_EQ(net.packets_in_network(), 0) << context;
  for (RouterId r = 0; r < topo.num_routers(); ++r) {
    for (PortIndex p = 0; p < topo.num_network_ports(r); ++p) {
      EXPECT_EQ(net.port_occupancy(r, p, false), 0)
          << context << ": undrained ledger at router " << r << " port "
          << p << " — some flit's credit never returned";
      EXPECT_EQ(net.port_occupancy(r, p, true), 0) << context;
    }
    for (PortIndex p = 0; p < net.num_input_ports(r); ++p) {
      EXPECT_EQ(net.input_buffer(r, p).occupancy(), 0)
          << context << ": stranded phits at router " << r << " port " << p;
    }
  }
}

TEST(FlowControlProperties, BurstDrainsCompletelyUnderEveryScheme) {
  // A quiet network (load 0) with one hand-injected packet per node: every
  // flit must reach its destination, every credit must return, every
  // buffer must empty — conservation, under all six scheme combos and
  // both a 1-phit and a multi-phit segmentation.
  for (const SchemeCombo& combo : all_combos()) {
    for (const int phits : {1, 4}) {
      SimConfig cfg;
      cfg.load = 0.0;
      cfg.policy = "flexvc";
      cfg.vcs = "4/2";
      cfg.routing = "min";
      cfg.flow_control = combo.fc;
      cfg.buffer_mgmt = combo.bm;
      cfg.phits_per_packet = phits;
      const std::string context = std::string(combo.fc) + "/" + combo.bm +
                                  " phits=" + std::to_string(phits);
      Network net(cfg);
      const NodeId nodes = net.topology().num_nodes();
      int injected = 0;
      for (NodeId n = 0; n < nodes; ++n) {
        Packet pkt;
        pkt.src = n;
        pkt.dst = (n + nodes / 2 + 1) % nodes;
        pkt.size = cfg.effective_packet_phits();
        pkt.cls = MsgClass::kRequest;
        pkt.created = 0;
        if (net.try_inject(n, pkt, 0)) ++injected;
      }
      ASSERT_GT(injected, static_cast<int>(nodes) / 2) << context;

      Cycle now = 0;
      for (; now < 20000 && net.packets_in_network() > 0; ++now) {
        net.step(now);
        if (now % 64 == 0) expect_invariants(net, context);
      }
      ASSERT_EQ(net.packets_in_network(), 0)
          << context << ": burst never fully consumed";
      const Cycle drain_until = now + 3 * cfg.global_latency;
      for (; now < drain_until; ++now) net.step(now);
      expect_fully_drained(net, context);
    }
  }
}

TEST(FlowControlProperties, RandomizedGridsKeepInvariantsUnderLoad) {
  // Sustained randomized traffic (three seeds, near-saturation load) under
  // each flit scheme x ledger: the run must not deadlock, must deliver
  // packets, and the post-run network must satisfy every structural
  // invariant. Body-flit interleaving would abort inside add_phit.
  for (const SchemeCombo& combo : all_combos()) {
    if (std::string(combo.fc) == "packet") continue;  // flit schemes only
    for (const std::uint64_t seed : {11ull, 12ull, 13ull}) {
      SimConfig cfg = fast_config();
      cfg.policy = "flexvc";
      cfg.vcs = "4/2";
      cfg.flow_control = combo.fc;
      cfg.buffer_mgmt = combo.bm;
      cfg.load = 0.9;
      cfg.seed = seed;
      const std::string context = std::string(combo.fc) + "/" + combo.bm +
                                  " seed=" + std::to_string(seed);
      Simulator sim(cfg);
      const SimResult result = sim.run();
      EXPECT_FALSE(result.deadlock) << context;
      EXPECT_GT(result.consumed_packets, 0) << context;
      EXPECT_GT(result.accepted, 0.0) << context;
      ASSERT_NE(sim.network(), nullptr);
      expect_invariants(*sim.network(), context);
    }
  }
}

TEST(FlowControlProperties, OnOffLedgerHonorsHysteresisBounds) {
  // Direct unit check of the on/off wrapper: the off bit trips exactly
  // below the off threshold and releases exactly at the on threshold.
  CreditLedger ledger(/*num_vcs=*/2, /*private_per_vc=*/4,
                      /*shared_capacity=*/0);
  ledger.enable_on_off(/*off_threshold=*/2, /*on_threshold=*/4);
  EXPECT_TRUE(ledger.on_off_enabled());
  EXPECT_FALSE(ledger.is_off());
  // Fill VC0 fully and VC1 partially: port free = 8 - 7 = 1 < 2 -> off.
  ledger.on_send(0, 4, RouteKind::kMinimal);
  EXPECT_FALSE(ledger.is_off());  // free = 4, above off threshold
  ledger.on_send(1, 3, RouteKind::kMinimal);
  EXPECT_TRUE(ledger.is_off());
  EXPECT_FALSE(ledger.can_send(1, 1)) << "off bit must gate can_send";
  // Hysteresis: freeing back to 2 or 3 is not enough; 4 re-opens.
  ledger.on_credit(1, 2, RouteKind::kMinimal);
  EXPECT_TRUE(ledger.is_off()) << "free=3 < on_threshold=4 must stay off";
  ledger.on_credit(1, 1, RouteKind::kMinimal);
  EXPECT_FALSE(ledger.is_off()) << "free=4 reaches on_threshold";
  EXPECT_TRUE(ledger.can_send(1, 1));
}

// ---------------------------------------------------------------------------
// 3. Shard determinism over the shipped fig6_flow_control grid.

TEST(FlowControlShards, MergedShardsMatchSerialForEveryScheme) {
  const SuiteSpec spec = SuiteSpec::load_shipped("fig6_flow_control.json");
  SimConfig defaults;
  Options fast;
  fast.set("warmup", "200");
  fast.set("measure", "400");
  const std::vector<ExperimentSeries> grid =
      spec.materialize(defaults, &fast);
  const std::vector<double>& loads = spec.loads;
  const int seeds = spec.seeds_or(1);
  const std::size_t points = grid.size() * loads.size();
  const std::uint64_t fingerprint = grid_fingerprint(grid, loads, seeds);

  const std::vector<SweepResult> serial =
      SweepRunner(1).run(grid, loads, seeds);

  for (const int count : {2, 3, 7}) {
    std::vector<ShardJournal> shards;
    std::vector<std::string> paths;
    for (int i = 0; i < count; ++i) {
      const std::string path =
          ::testing::TempDir() + "fc_battery_" + std::to_string(count) +
          "_" + std::to_string(i) + ".journal";
      std::remove(path.c_str());
      SweepRunner runner(/*workers=*/2);
      runner.set_checkpoint(path);
      runner.set_shard(ShardSpec{i, count});
      runner.run(grid, loads, seeds);
      shards.push_back({path, read_journal(path)});
      EXPECT_EQ(shards.back().contents.fingerprint, fingerprint) << path;
      paths.push_back(path);
    }
    const auto records = merge_journals(shards);
    ASSERT_EQ(records.size(), points * static_cast<std::size_t>(seeds))
        << count << " shards";
    std::vector<std::vector<SimResult>> per_seed(
        points, std::vector<SimResult>(static_cast<std::size_t>(seeds)));
    for (const auto& rec : records)
      per_seed[rec.point][static_cast<std::size_t>(rec.seed)] = rec.result;
    const std::vector<SweepResult> merged =
        SweepRunner::reduce_slots(grid, loads, per_seed);

    ASSERT_EQ(merged.size(), serial.size()) << count << " shards";
    for (std::size_t s = 0; s < serial.size(); ++s) {
      EXPECT_EQ(serial[s].label, merged[s].label);
      ASSERT_EQ(serial[s].rows.size(), merged[s].rows.size());
      for (std::size_t r = 0; r < serial[s].rows.size(); ++r) {
        EXPECT_TRUE(result_bits_equal(serial[s].rows[r].result,
                                      merged[s].rows[r].result))
            << count << " shards, series '" << serial[s].label << "' row "
            << r << ": the flow-control axis broke shard determinism";
      }
    }
    for (const std::string& path : paths) std::remove(path.c_str());
  }
}

// The flit schemes must actually differ from packet mode at a real
// segmentation — otherwise the axis is wired to a no-op and the oracle
// above proves nothing.
TEST(FlowControlShards, MultiPhitSchemesAreNotSilentNoOps) {
  SimConfig packet = fast_config();
  packet.policy = "flexvc";
  packet.vcs = "4/2";
  packet.load = 1.0;
  const SimResult ref = Simulator(packet).run();
  for (const char* fc : {"wormhole", "vct"}) {
    SimConfig cfg = packet;
    cfg.flow_control = fc;
    const SimResult got = Simulator(cfg).run();
    EXPECT_FALSE(result_bits_equal(ref, got))
        << fc << " at packet_size=8 produced the packet-mode result "
        << "bit for bit — the scheme is not actually segmenting";
  }
}

}  // namespace
}  // namespace flexnet
