// Supporting machinery: HopSeq, Metrics windows, SimConfig overrides, and
// the experiment-harness helpers the benches are built on.
#include <gtest/gtest.h>

#include "core/hop_seq.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"

namespace flexnet {
namespace {

constexpr LinkType kL = LinkType::kLocal;
constexpr LinkType kG = LinkType::kGlobal;

// --- HopSeq.

TEST(HopSeq, BasicOperations) {
  HopSeq seq{kL, kG, kL};
  EXPECT_EQ(seq.size(), 3);
  EXPECT_EQ(seq.count(kL), 2);
  EXPECT_EQ(seq.count(kG), 1);
  EXPECT_EQ(seq.to_string(), "lgl");
  EXPECT_FALSE(seq.empty());
}

TEST(HopSeq, TailDropsFirstHop) {
  HopSeq seq{kL, kG, kL};
  EXPECT_EQ(seq.tail().to_string(), "gl");
  EXPECT_EQ(seq.tail().tail().tail().size(), 0);
}

TEST(HopSeq, ConcatenationBuildsValiantPaths) {
  const HopSeq first{kL, kG, kL};
  const HopSeq second{kL, kG, kL};
  EXPECT_EQ((first + second).to_string(), "lgllgl");
}

TEST(HopSeq, EqualityAndIteration) {
  HopSeq a{kL, kG};
  HopSeq b{kL, kG};
  HopSeq c{kG, kL};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  int hops = 0;
  for (LinkType t : a) {
    (void)t;
    ++hops;
  }
  EXPECT_EQ(hops, 2);
}

// --- Metrics.

Packet mk(Cycle created, int size = 8, MsgClass cls = MsgClass::kRequest) {
  Packet p;
  p.created = created;
  p.size = size;
  p.cls = cls;
  p.hops = 3;
  return p;
}

TEST(Metrics, CountsOnlyInsideWindow) {
  Metrics m;
  m.on_generated(8);                 // before window: in-flight only
  m.on_consumed(mk(0), 50);
  m.begin_window(100);
  m.on_generated(8);
  m.on_consumed(mk(100), 250);
  m.end_window(200);
  m.on_generated(8);                 // after window
  m.on_consumed(mk(200), 260);

  EXPECT_EQ(m.generated_packets(), 3);
  EXPECT_EQ(m.consumed_packets(), 3);
  EXPECT_EQ(m.window_cycles(), 100);
  // Only the in-window packet contributes to rates and latency.
  EXPECT_DOUBLE_EQ(m.offered_load(/*nodes=*/1), 8.0 / 100.0);
  EXPECT_DOUBLE_EQ(m.accepted_load(1), 8.0 / 100.0);
  EXPECT_DOUBLE_EQ(m.latency().mean(), 150.0);
}

TEST(Metrics, PerClassLatency) {
  Metrics m;
  m.begin_window(0);
  m.on_consumed(mk(0, 8, MsgClass::kRequest), 100);
  m.on_consumed(mk(0, 8, MsgClass::kReply), 300);
  m.end_window(1000);
  EXPECT_DOUBLE_EQ(m.latency_of(MsgClass::kRequest).mean(), 100.0);
  EXPECT_DOUBLE_EQ(m.latency_of(MsgClass::kReply).mean(), 300.0);
  EXPECT_DOUBLE_EQ(m.latency().mean(), 200.0);
}

TEST(Metrics, InFlightBalance) {
  Metrics m;
  for (int i = 0; i < 5; ++i) m.on_generated(8);
  EXPECT_EQ(m.in_flight(), 5);
  m.on_consumed(mk(0), 10);
  EXPECT_EQ(m.in_flight(), 4);
  EXPECT_EQ(m.last_consumption(), 10);
}

// --- Experiment helpers.

TEST(Experiment, LoadPointsAreInclusiveAndEven) {
  const auto pts = load_points(0.2, 1.0, 5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front(), 0.2);
  EXPECT_DOUBLE_EQ(pts.back(), 1.0);
  EXPECT_DOUBLE_EQ(pts[1] - pts[0], 0.2);
}

TEST(Experiment, SweepResultMaxima) {
  SweepResult sweep;
  for (double acc : {0.3, 0.7, 0.5}) {
    SweepRow row;
    row.result.accepted = acc;
    sweep.rows.push_back(row);
  }
  EXPECT_DOUBLE_EQ(sweep.max_accepted(), 0.7);
  EXPECT_DOUBLE_EQ(sweep.saturation_accepted(), 0.5);
}

TEST(Experiment, RunLoadSweepFillsRows) {
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 1000;
  auto sweeps = run_load_sweep({{"test", cfg}}, {0.1, 0.3}, 1);
  ASSERT_EQ(sweeps.size(), 1u);
  ASSERT_EQ(sweeps[0].rows.size(), 2u);
  EXPECT_NEAR(sweeps[0].rows[0].result.accepted, 0.1, 0.03);
  EXPECT_NEAR(sweeps[0].rows[1].result.accepted, 0.3, 0.03);
}

TEST(Experiment, RunAveragedUsesDistinctSeeds) {
  SimConfig cfg;
  cfg.warmup = 500;
  cfg.measure = 1000;
  cfg.load = 0.4;
  const SimResult avg = run_averaged(cfg, 2);
  EXPECT_NEAR(avg.accepted, 0.4, 0.03);
  EXPECT_GT(avg.consumed_packets, 0);
}

// --- SimConfig.

TEST(SimConfig, ApplyOverrides) {
  SimConfig cfg;
  cfg.apply(Options::parse_string(
      "policy=flexvc vcs=8/4 load=0.75 traffic=bursty speedup=1 seed=42 "
      "df_h=4 reactive=true"));
  EXPECT_EQ(cfg.policy, "flexvc");
  EXPECT_EQ(cfg.vcs, "8/4");
  EXPECT_DOUBLE_EQ(cfg.load, 0.75);
  EXPECT_EQ(cfg.traffic, "bursty");
  EXPECT_EQ(cfg.speedup, 1);
  EXPECT_EQ(cfg.seed, 42u);
  EXPECT_EQ(cfg.dragonfly.h, 4);
  EXPECT_TRUE(cfg.reactive);
}

TEST(SimConfig, PaperScaleFlag) {
  SimConfig cfg;
  cfg.apply(Options::parse_string("paper_scale=1"));
  EXPECT_EQ(cfg.dragonfly.num_nodes(), 16512);
}

TEST(SimConfig, SummaryMentionsKeyFields) {
  SimConfig cfg;
  cfg.policy = "flexvc";
  cfg.vcs = "4/2";
  const std::string s = cfg.summary();
  EXPECT_NE(s.find("flexvc"), std::string::npos);
  EXPECT_NE(s.find("4/2"), std::string::npos);
}

}  // namespace
}  // namespace flexnet
