#include "core/vc_arrangement.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace flexnet {
namespace {

TEST(VcArrangement, ParsesTypedSingleClass) {
  const auto arr = VcArrangement::parse("4/2");
  EXPECT_TRUE(arr.typed);
  EXPECT_EQ(arr.req_local, 4);
  EXPECT_EQ(arr.req_global, 2);
  EXPECT_FALSE(arr.has_reply());
  EXPECT_EQ(arr.to_string(), "4/2");
}

TEST(VcArrangement, ParsesTypedRequestReply) {
  const auto arr = VcArrangement::parse("4/2+2/1");
  EXPECT_TRUE(arr.typed);
  EXPECT_EQ(arr.req_local, 4);
  EXPECT_EQ(arr.req_global, 2);
  EXPECT_EQ(arr.rep_local, 2);
  EXPECT_EQ(arr.rep_global, 1);
  EXPECT_TRUE(arr.has_reply());
  EXPECT_EQ(arr.to_string(), "4/2+2/1");
}

TEST(VcArrangement, ParsesUntyped) {
  const auto arr = VcArrangement::parse("3");
  EXPECT_FALSE(arr.typed);
  EXPECT_EQ(arr.req_local, 3);
  EXPECT_FALSE(arr.has_reply());
  EXPECT_EQ(arr.to_string(), "3");
}

TEST(VcArrangement, ParsesUntypedRequestReply) {
  const auto arr = VcArrangement::parse("3+2");
  EXPECT_FALSE(arr.typed);
  EXPECT_EQ(arr.req_local, 3);
  EXPECT_EQ(arr.rep_local, 2);
  EXPECT_EQ(arr.to_string(), "3+2");
}

TEST(VcArrangement, CountPerClassAndType) {
  const auto arr = VcArrangement::parse("4/2+2/1");
  EXPECT_EQ(arr.count(MsgClass::kRequest, LinkType::kLocal), 4);
  EXPECT_EQ(arr.count(MsgClass::kRequest, LinkType::kGlobal), 2);
  EXPECT_EQ(arr.count(MsgClass::kReply, LinkType::kLocal), 2);
  EXPECT_EQ(arr.count(MsgClass::kReply, LinkType::kGlobal), 1);
  EXPECT_EQ(arr.vcs_per_port(LinkType::kLocal), 6);
  EXPECT_EQ(arr.vcs_per_port(LinkType::kGlobal), 3);
}

TEST(VcArrangement, UntypedFoldsGlobalOntoLocal) {
  const auto arr = VcArrangement::parse("3+2");
  EXPECT_EQ(arr.count(MsgClass::kRequest, LinkType::kGlobal), 3);
  EXPECT_EQ(arr.vcs_per_port(LinkType::kGlobal), 5);
}

TEST(VcArrangement, RejectsMalformedInput) {
  EXPECT_THROW(VcArrangement::parse("abc"), std::invalid_argument);
  EXPECT_THROW(VcArrangement::parse("4/"), std::invalid_argument);
  EXPECT_THROW(VcArrangement::parse("0/2"), std::invalid_argument);
  EXPECT_THROW(VcArrangement::parse("4/0"), std::invalid_argument);
  EXPECT_THROW(VcArrangement::parse("4/2+3"), std::invalid_argument);
  EXPECT_THROW(VcArrangement::parse("4/2x"), std::invalid_argument);
}

TEST(VcArrangement, PaperTableVDefaults) {
  // Table V: 2/1 for MIN, 4/2 for VAL and PB.
  const auto min_arr = VcArrangement::parse("2/1");
  EXPECT_EQ(min_arr.vcs_per_port(LinkType::kLocal), 2);
  EXPECT_EQ(min_arr.vcs_per_port(LinkType::kGlobal), 1);
  const auto val_arr = VcArrangement::parse("4/2");
  EXPECT_EQ(val_arr.vcs_per_port(LinkType::kLocal), 4);
  EXPECT_EQ(val_arr.vcs_per_port(LinkType::kGlobal), 2);
}

}  // namespace
}  // namespace flexnet
