// The heartbeat sidecar: writer/reader round trips (torn trailing lines,
// truncate-per-session restarts, unopenable paths degrading to no-ops),
// the SweepRunner integration that puts the sidecar next to the
// checkpoint journal, and HeartbeatMonitor — the orchestrator's liveness
// watcher — with an injected clock so staleness arithmetic is tested
// without sleeping. read_heartbeat is the single reader: `flexnet_run
// --progress` renders it and HeartbeatMonitor polls through it, so these
// tests cover both consumers at once.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "runner/sweep_runner.hpp"
#include "sim/config.hpp"
#include "sim/experiment.hpp"
#include "telemetry/heartbeat.hpp"

namespace flexnet {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

void append_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ---------------------------------------------------------------------------
// Writer/reader round trips.

TEST(Heartbeat, RoundTripsProgressAndFinish) {
  const std::string path = temp_path("hb_rt.hb");
  {
    HeartbeatWriter hb(path, /*min_interval=*/0.0);
    ASSERT_TRUE(hb.ok());
    hb.begin(/*total=*/10, /*prefilled=*/3);
    hb.on_job(100);
    hb.on_job(200);
    hb.finish();
  }
  HeartbeatStatus status;
  std::string error;
  ASSERT_TRUE(read_heartbeat(path, &status, &error)) << error;
  EXPECT_EQ(status.total, 10u);
  EXPECT_EQ(status.prefilled, 3u);
  EXPECT_EQ(status.done, 5u) << "prefilled jobs count as done";
  EXPECT_EQ(status.cycles, 300);
  EXPECT_TRUE(status.finished);
  EXPECT_GE(status.records, 4u);  // begin + 2 jobs + final HB (+ END)
  std::remove(path.c_str());
}

TEST(Heartbeat, TornTrailingLineIgnored) {
  const std::string path = temp_path("hb_torn.hb");
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(4, 0);
    hb.on_job(50);
  }
  // The writer died mid-append: a torn record must not hide the last
  // intact one or fail the parse.
  append_file(path, "HB done=99 total=4 cycl");
  HeartbeatStatus status;
  std::string error;
  ASSERT_TRUE(read_heartbeat(path, &status, &error)) << error;
  EXPECT_EQ(status.done, 1u);
  EXPECT_FALSE(status.finished);
  std::remove(path.c_str());
}

TEST(Heartbeat, ForeignOrMissingFileIsAnExplicitError) {
  HeartbeatStatus status;
  std::string error;
  EXPECT_FALSE(read_heartbeat(temp_path("hb_missing.hb"), &status, &error));
  EXPECT_NE(error.find("cannot read"), std::string::npos) << error;

  const std::string foreign = temp_path("hb_foreign.hb");
  append_file(foreign, "{\"meta\": \"a json report\"}\n");
  EXPECT_FALSE(read_heartbeat(foreign, &status, &error));
  EXPECT_NE(error.find("not a flexnet heartbeat"), std::string::npos)
      << error;
  std::remove(foreign.c_str());
}

TEST(Heartbeat, UnopenablePathDegradesToNoOp) {
  HeartbeatWriter hb(temp_path("no-such-dir/x.hb"), 0.0);
  EXPECT_FALSE(hb.ok());
  hb.begin(5, 0);  // all no-ops, must not crash
  hb.on_job(10);
  hb.finish();
}

TEST(Heartbeat, NewSessionTruncatesThePreviousOne) {
  const std::string path = temp_path("hb_trunc.hb");
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(10, 0);
    hb.finish();
  }
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(4, 2);  // a resume restarts the heartbeat from scratch
    hb.finish();
  }
  HeartbeatStatus status;
  std::string error;
  ASSERT_TRUE(read_heartbeat(path, &status, &error)) << error;
  EXPECT_EQ(status.total, 4u);
  EXPECT_EQ(status.prefilled, 2u);
  std::remove(path.c_str());
}

TEST(Heartbeat, SweepRunnerWritesTheSidecarNextToTheCheckpoint) {
  SimConfig cfg;
  cfg.warmup = 200;
  cfg.measure = 400;
  cfg.load = 0.4;
  const std::vector<ExperimentSeries> grid = {{"baseline", cfg}};
  const std::vector<double> loads = {0.2, 0.4};
  const int seeds = 2;

  const std::string journal = temp_path("hb_sweep.journal");
  const std::string sidecar = journal + ".hb";
  std::remove(journal.c_str());
  std::remove(sidecar.c_str());
  SweepRunner runner(2);
  runner.set_checkpoint(journal);
  runner.run(grid, loads, seeds);

  HeartbeatStatus status;
  std::string error;
  ASSERT_TRUE(read_heartbeat(sidecar, &status, &error)) << error;
  EXPECT_EQ(status.total, grid.size() * loads.size() * seeds);
  EXPECT_EQ(status.done, status.total);
  EXPECT_TRUE(status.finished);
  EXPECT_GT(status.cycles, 0);
  std::remove(journal.c_str());
  std::remove(sidecar.c_str());
}

TEST(Heartbeat, ExplicitHeartbeatPathOverridesTheSidecarDefault) {
  SimConfig cfg;
  cfg.warmup = 100;
  cfg.measure = 200;
  const std::vector<ExperimentSeries> grid = {{"baseline", cfg}};

  const std::string journal = temp_path("hb_explicit.journal");
  const std::string elsewhere = temp_path("hb_explicit_elsewhere.hb");
  std::remove(journal.c_str());
  std::remove((journal + ".hb").c_str());
  std::remove(elsewhere.c_str());
  SweepRunner runner(1);
  runner.set_checkpoint(journal);
  runner.set_heartbeat(elsewhere);
  runner.run(grid, {0.2}, 1);

  HeartbeatStatus status;
  std::string error;
  ASSERT_TRUE(read_heartbeat(elsewhere, &status, &error)) << error;
  EXPECT_TRUE(status.finished);
  EXPECT_FALSE(std::ifstream(journal + ".hb").good())
      << "the default sidecar must not appear when --heartbeat overrides it";
  std::remove(journal.c_str());
  std::remove(elsewhere.c_str());
}

// ---------------------------------------------------------------------------
// HeartbeatMonitor: liveness with an injected clock — no sleeping.

TEST(HeartbeatMonitor, StaleAgeGrowsWhileTheFileDoesNotAdvance) {
  const std::string path = temp_path("hbm_stale.hb");
  std::remove(path.c_str());
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(8, 0);
    hb.on_job(10);
  }

  double now = 100.0;
  HeartbeatMonitor monitor(path, [&now] { return now; });
  monitor.poll();
  EXPECT_TRUE(monitor.ever_read());
  EXPECT_EQ(monitor.last().done, 1u);
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0);

  now = 130.0;  // nothing written since
  monitor.poll();
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 30.0);

  // A new intact record is an advance: the stale clock restarts.
  append_file(path, "HB done=2 total=8 cycles=20 wall=1.0 "
                    "cycles_per_sec=20 jobs_per_sec=2\n");
  now = 140.0;
  monitor.poll();
  EXPECT_EQ(monitor.last().done, 2u);
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0);
  std::remove(path.c_str());
}

TEST(HeartbeatMonitor, TornBytesMidAppendStillCountAsLiveness) {
  const std::string path = temp_path("hbm_torn.hb");
  std::remove(path.c_str());
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(8, 0);
    hb.on_job(10);
  }

  double now = 0.0;
  HeartbeatMonitor monitor(path, [&now] { return now; });
  monitor.poll();

  // The writer is mid-append: the parsed status cannot change (the torn
  // line is ignored), but the file grew — proof of life, not staleness.
  append_file(path, "HB done=2 total=8 cyc");
  now = 50.0;
  monitor.poll();
  EXPECT_EQ(monitor.last().done, 1u) << "torn line must not parse";
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0)
      << "new bytes on disk are an advance even when unparseable";
  std::remove(path.c_str());
}

TEST(HeartbeatMonitor, SessionRestartTruncationIsAnAdvance) {
  const std::string path = temp_path("hbm_restart.hb");
  std::remove(path.c_str());
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(8, 0);
    hb.on_job(10);
    hb.on_job(20);
    hb.on_job(30);
  }

  double now = 0.0;
  HeartbeatMonitor monitor(path, [&now] { return now; });
  monitor.poll();
  EXPECT_EQ(monitor.last().done, 3u);

  // The restarted shard truncates the file and begins a fresh session
  // with the first 3 jobs prefilled from its journal. The file may be
  // *smaller* now; the monitor must read it as an advance, not silence.
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(8, 3);
  }
  now = 40.0;
  monitor.poll();
  EXPECT_EQ(monitor.last().prefilled, 3u);
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0);
  std::remove(path.c_str());
}

TEST(HeartbeatMonitor, MissingFileGoesStaleFromConstruction) {
  const std::string path = temp_path("hbm_missing.hb");
  std::remove(path.c_str());

  double now = 10.0;
  HeartbeatMonitor monitor(path, [&now] { return now; });
  monitor.poll();
  EXPECT_FALSE(monitor.ever_read());

  now = 75.0;  // the shard died before its first heartbeat
  monitor.poll();
  EXPECT_FALSE(monitor.ever_read());
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 65.0)
      << "a shard that never heartbeats must still go stale";
  std::remove(path.c_str());
}

TEST(HeartbeatMonitor, ResetForgetsHistoryAndRestartsTheClock) {
  const std::string path = temp_path("hbm_reset.hb");
  std::remove(path.c_str());
  {
    HeartbeatWriter hb(path, 0.0);
    hb.begin(8, 0);
    hb.on_job(10);
  }

  double now = 0.0;
  HeartbeatMonitor monitor(path, [&now] { return now; });
  monitor.poll();
  ASSERT_TRUE(monitor.ever_read());

  now = 90.0;
  monitor.reset();  // the orchestrator relaunched the shard
  EXPECT_FALSE(monitor.ever_read());
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0);

  // The same on-disk bytes parse again after reset: the relaunched
  // process has not truncated yet, and re-reading them is an advance
  // relative to the forgotten history.
  now = 95.0;
  monitor.poll();
  EXPECT_TRUE(monitor.ever_read());
  EXPECT_EQ(monitor.last().done, 1u);
  EXPECT_DOUBLE_EQ(monitor.stale_age(), 0.0);
  std::remove(path.c_str());
}

TEST(HeartbeatMonitor, DefaultClockIsMonotonicSeconds) {
  const std::string path = temp_path("hbm_default_clock.hb");
  std::remove(path.c_str());
  HeartbeatMonitor monitor(path);  // default clock, file never appears
  monitor.poll();
  EXPECT_GE(monitor.stale_age(), 0.0);
  EXPECT_LT(monitor.stale_age(), 60.0) << "stale clock must start at now";
}

}  // namespace
}  // namespace flexnet
