#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace flexnet {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SplitStreamsAreIndependentAndDeterministic) {
  Rng parent(7);
  Rng c1 = parent.split(0);
  Rng c2 = parent.split(1);
  Rng c1_again = Rng(7).split(0);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (c1.next_u64() == c2.next_u64()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Rng rng(11);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i)
    ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 5 * std::sqrt(expected));
  }
}

TEST(Rng, NextRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.next_range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i)
    if (rng.next_bernoulli(0.3)) ++hits;
  EXPECT_NEAR(hits / static_cast<double>(kSamples), 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  EXPECT_FALSE(rng.next_bernoulli(0.0));
  EXPECT_TRUE(rng.next_bernoulli(1.0));
  EXPECT_FALSE(rng.next_bernoulli(-1.0));
}

TEST(Rng, GeometricMean) {
  Rng rng(19);
  constexpr int kSamples = 50000;
  double sum = 0;
  for (int i = 0; i < kSamples; ++i)
    sum += static_cast<double>(rng.next_geometric(0.2));
  // Mean failures before success = (1-p)/p = 4.
  EXPECT_NEAR(sum / kSamples, 4.0, 0.15);
}

}  // namespace
}  // namespace flexnet
