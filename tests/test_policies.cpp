// Unit and property tests for FlexVC and baseline candidate generation.
#include <gtest/gtest.h>

#include "core/baseline_policy.hpp"
#include "core/flexvc_policy.hpp"

namespace flexnet {
namespace {

constexpr LinkType kL = LinkType::kLocal;
constexpr LinkType kG = LinkType::kGlobal;

std::vector<VcCandidate> flex_candidates(const std::string& arrangement,
                                         const HopContext& ctx) {
  FlexVcPolicy policy{VcArrangement::parse(arrangement)};
  std::vector<VcCandidate> out;
  policy.candidates(ctx, out);
  return out;
}

std::vector<VcCandidate> base_candidates(const std::string& arrangement,
                                         const HopContext& ctx) {
  BaselinePolicy policy{VcArrangement::parse(arrangement)};
  std::vector<VcCandidate> out;
  policy.candidates(ctx, out);
  return out;
}

HopContext df_min_first_hop() {
  HopContext ctx;
  ctx.cls = MsgClass::kRequest;
  ctx.hop_type = kL;
  ctx.floors = VcTemplate::no_floors();
  ctx.intended_after = {kG, kL};
  ctx.escape_after = {kG, kL};
  return ctx;
}

void use_local(HopContext& ctx, int pos) {
  ctx.floors[0] = pos;
  ctx.position = pos;
}
void use_global(HopContext& ctx, int pos) {
  ctx.floors[1] = pos;
  ctx.position = pos;
}

// --- Baseline: exactly the distance-based VC.

TEST(BaselinePolicy, MinPathUsesReferencePrefix) {
  // 4/2 (reference l0 g0 l1 l2 g1 l3): a MIN path l-g-l uses the prefix
  // slots l0, g0, l1 — "such traffic only employs the first VC" (SIII-D),
  // leaving the later VCs unused (the inefficiency FlexVC removes).
  HopContext ctx = df_min_first_hop();
  auto c = base_candidates("4/2", ctx);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].phys, 0);  // l0

  ctx.hop_type = kG;
  use_local(ctx, c[0].position);
  ctx.intended_after = {kL};
  auto g = base_candidates("4/2", ctx);
  ASSERT_EQ(g.size(), 1u);
  EXPECT_EQ(g[0].phys, 0);  // g0 — the VC that PB per-VC sensing monitors

  ctx.hop_type = kL;
  use_global(ctx, g[0].position);
  ctx.intended_after = {};
  auto l = base_candidates("4/2", ctx);
  ASSERT_EQ(l.size(), 1u);
  EXPECT_EQ(l[0].phys, 1);  // l1
}

TEST(BaselinePolicy, ValiantPathUsesFullReference) {
  // A full Valiant path l-g-l-l-g-l under 4/2 walks the entire reference
  // l0 g0 l1 l2 g1 l3 in order.
  const HopSeq val{kL, kG, kL, kL, kG, kL};
  HopContext ctx;
  int expected_phys[] = {0, 0, 1, 2, 1, 3};
  HopSeq remaining = val;
  for (int hop = 0; hop < val.size(); ++hop) {
    ctx.hop_type = val[hop];
    ctx.intended_after = remaining.tail();
    remaining = remaining.tail();
    auto c = base_candidates("4/2", ctx);
    ASSERT_EQ(c.size(), 1u) << "hop " << hop;
    EXPECT_EQ(c[0].phys, expected_phys[hop]) << "hop " << hop;
    if (val[hop] == kL)
      use_local(ctx, c[0].position);
    else
      use_global(ctx, c[0].position);
  }
}

TEST(BaselinePolicy, ValiantNeedsFourTwo) {
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.intended_after = {kG, kL, kL, kG, kL};  // VAL after first hop
  ctx.escape_after = {kG, kL};
  EXPECT_TRUE(base_candidates("2/1", ctx).empty());
  EXPECT_TRUE(base_candidates("3/2", ctx).empty());
  EXPECT_EQ(base_candidates("4/2", ctx).size(), 1u);
}

TEST(BaselinePolicy, RepliesUseOwnSegment) {
  HopContext ctx = df_min_first_hop();
  ctx.cls = MsgClass::kReply;
  auto c = base_candidates("2/1+2/1", ctx);
  ASSERT_EQ(c.size(), 1u);
  // Physical index 2 = first reply local VC (after the 2 request VCs).
  EXPECT_EQ(c[0].phys, 2);
}

// --- FlexVC: every VC with a feasible escape.

TEST(FlexVcPolicy, MinFirstHopGetsMultipleVcs) {
  // 4/2 (l0 g0 l1 l2 g1 l3): a MIN first hop may use l0, l1 or l2 — the
  // escape g-l fits above each — but not l3 (no g above it).
  auto c = flex_candidates("4/2", df_min_first_hop());
  ASSERT_EQ(c.size(), 3u);
  EXPECT_EQ(c[0].phys, 0);
  EXPECT_EQ(c[1].phys, 1);
  EXPECT_EQ(c[2].phys, 2);
  for (const auto& cand : c) EXPECT_TRUE(cand.safe);
}

TEST(FlexVcPolicy, BaselineIsSubsetOfFlexVc) {
  // Property: for every hop the baseline VC is among FlexVC's candidates.
  for (const std::string arr : {"2/1", "3/2", "4/2", "5/2", "8/4"}) {
    HopContext ctx = df_min_first_hop();
    auto base = base_candidates(arr, ctx);
    auto flex = flex_candidates(arr, ctx);
    ASSERT_EQ(base.size(), 1u) << arr;
    bool found = false;
    for (const auto& cand : flex)
      if (cand.phys == base[0].phys) found = true;
    EXPECT_TRUE(found) << arr;
  }
}

TEST(FlexVcPolicy, CandidatesAscendByPosition) {
  auto c = flex_candidates("8/4", df_min_first_hop());
  for (std::size_t i = 1; i < c.size(); ++i)
    EXPECT_LT(c[i - 1].position, c[i].position);
}

TEST(FlexVcPolicy, TypeFloorRespected) {
  // A packet whose last local VC was l2 (position 3 of 4/2) may re-use l2
  // at the next router (opportunistic, Def. 2 equality) or climb to l3,
  // but never drop below its per-type floor.
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.position = 3;
  ctx.floors = {3, VcTemplate::kNoFloor};
  ctx.intended_after = {};
  ctx.escape_after = {};
  auto c = flex_candidates("4/2", ctx);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_EQ(c[0].position, 3);
  EXPECT_FALSE(c[0].safe);  // equality: usable only with credits in hand
  EXPECT_EQ(c[1].position, 5);
  EXPECT_TRUE(c[1].safe);
}

TEST(FlexVcPolicy, FloorsArePerLinkType) {
  // A high *local* floor must not constrain the *global* VC choice: this
  // independence is what prevents overflow on one type from cascading into
  // the scarce high VCs of the other (FOGSim-lineage per-type indices).
  HopContext ctx;
  ctx.hop_type = kG;
  ctx.position = 3;  // sitting in l2
  ctx.floors = {3, VcTemplate::kNoFloor};
  ctx.intended_after = {kL};
  ctx.escape_after = {kL};
  auto c = flex_candidates("4/2", ctx);
  ASSERT_EQ(c.size(), 2u);  // g0 AND g1 — g0 is not blocked by the local floor
  EXPECT_EQ(c[0].position, 1);
  EXPECT_FALSE(c[0].safe);  // template descent: credits-in-hand only
  EXPECT_EQ(c[1].position, 4);
  EXPECT_TRUE(c[1].safe);
}

TEST(FlexVcPolicy, LastHopMayUseAnyVcAboveFloor) {
  // On the last hop (no escape needed), every local VC at or above the
  // floor is admissible — this is the HoLB-mitigation claim.
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.intended_after = {};
  ctx.escape_after = {};
  EXPECT_EQ(flex_candidates("4/2", ctx).size(), 4u);
  EXPECT_EQ(flex_candidates("8/4", ctx).size(), 8u);
}

TEST(FlexVcPolicy, OpportunisticValiantWithThreeTwo) {
  // 3/2 (l0 g0 l1 g1 l2): first hop of a Valiant path. The intended
  // remainder g-l-l-g-l cannot embed (not safe), but the escape g-l can, so
  // the hop is admissible yet opportunistic.
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.intended_after = {kG, kL, kL, kG, kL};
  ctx.escape_after = {kG, kL};
  auto c = flex_candidates("3/2", ctx);
  ASSERT_FALSE(c.empty());
  for (const auto& cand : c) EXPECT_FALSE(cand.safe);
}

TEST(FlexVcPolicy, InadmissibleWhenEscapeCannotFit) {
  // 2/1 (l0 g0 l1): a packet whose local floor is l1 (position 2) cannot
  // take a local hop needing escape g-l: no local slot remains for the
  // escape's final hop.
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.position = 2;
  ctx.floors = {2, 1};
  ctx.intended_after = {kG, kL};
  ctx.escape_after = {kG, kL};
  EXPECT_TRUE(flex_candidates("2/1", ctx).empty());
}

// --- Request-reply segmentation (Theorem 2).

TEST(FlexVcPolicy, RequestsNeverGetReplyVcs) {
  HopContext ctx = df_min_first_hop();
  auto c = flex_candidates("2/1+2/1", ctx);
  VcTemplate tmpl(VcArrangement::parse("2/1+2/1"));
  for (const auto& cand : c) {
    EXPECT_LT(cand.position, tmpl.request_limit());
    EXPECT_LT(cand.phys, 2);  // physical request VCs on a local port
  }
}

TEST(FlexVcPolicy, RepliesPreferTheirOwnSegment) {
  // A minimal reply hop that fits in the reply segment stays there: request
  // VCs are reserved for hops the reply segment cannot accommodate (SIII-B
  // frames them as what "opportunistic reply hops following nonminimal
  // paths can leverage").
  HopContext ctx = df_min_first_hop();
  ctx.cls = MsgClass::kReply;
  auto c = flex_candidates("2/1+2/1", ctx);
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c[0].phys, 2);  // l0' — the first reply local VC
  EXPECT_TRUE(c[0].safe);
}

TEST(FlexVcPolicy, RepliesLeverageRequestVcsForNonminimalHops) {
  // A Valiant reply under 2/1+2/1 does not fit in the reply segment; the
  // unified sequence (Theorem 2) lets it run opportunistically through the
  // request VCs — the Table IV "X / opport." mechanism.
  HopContext ctx;
  ctx.cls = MsgClass::kReply;
  ctx.hop_type = kL;
  ctx.intended_after = {kG, kL, kL, kG, kL};
  ctx.escape_after = {kG, kL};
  auto c = flex_candidates("2/1+2/1", ctx);
  ASSERT_FALSE(c.empty());
  VcTemplate tmpl(VcArrangement::parse("2/1+2/1"));
  EXPECT_EQ(tmpl.at(c[0].position).cls, MsgClass::kRequest);
  for (const auto& cand : c) EXPECT_FALSE(cand.safe);
}

TEST(FlexVcPolicy, ReplyEscapeMayCrossSegments) {
  // A reply that used request VCs l1 and g0 still has a safe escape through
  // the reply segment; g0 itself remains opportunistically reusable.
  VcTemplate tmpl(VcArrangement::parse("2/1+2/1"));
  HopContext ctx;
  ctx.cls = MsgClass::kReply;
  ctx.hop_type = kG;
  ctx.position = 2;     // sitting in request l1
  ctx.floors = {2, 1};  // request l1 and g0 already used
  ctx.intended_after = {kL};
  ctx.escape_after = {kL};
  auto c = flex_candidates("2/1+2/1", ctx);
  // Own-segment preference: the reply commits to its own g0' (safe); the
  // request g0 would only reappear if the reply segment could not hold the
  // remaining path.
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(tmpl.at(c[0].position).cls, MsgClass::kReply);  // g0'
  EXPECT_TRUE(c[0].safe);
}

// --- Untyped networks.

TEST(FlexVcPolicy, UntypedDiameterTwo) {
  // 3 VCs, first hop of a 2-hop minimal path: candidates l0, l1 (escape is
  // one hop; l2 leaves no room).
  HopContext ctx;
  ctx.hop_type = kL;
  ctx.intended_after = {kL};
  ctx.escape_after = {kL};
  auto c = flex_candidates("3", ctx);
  ASSERT_EQ(c.size(), 2u);
  EXPECT_TRUE(c[0].safe);
}

TEST(PolicyInterface, HasSafeCandidateMatchesClassification) {
  FlexVcPolicy policy{VcArrangement::parse("3/2")};
  HopContext val = df_min_first_hop();
  val.intended_after = {kG, kL, kL, kG, kL};
  EXPECT_FALSE(policy.has_safe_candidate(val));
  HopContext min = df_min_first_hop();
  EXPECT_TRUE(policy.has_safe_candidate(min));
}

}  // namespace
}  // namespace flexnet
