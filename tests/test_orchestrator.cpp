// The shard orchestrator: command planning (argv spelling, quoting for
// --emit-commands), the supervision loop against a scripted in-memory
// launcher (transient-death retry, permanent-failure fail-fast, retry
// budget, launch failures, stale-heartbeat kills — all sleep-free or
// near it), and the fault-injection battery against real flexnet_run
// processes — SIGKILL a shard mid-run, SIGSTOP-stall it, corrupt its
// journal — asserting the orchestrated sweep's merged rows and canonical
// JSON report stay byte-identical to a serial run of the same suite.
#include <gtest/gtest.h>

#include <signal.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/options.hpp"
#include "runner/checkpoint.hpp"
#include "runner/exit_codes.hpp"
#include "runner/json_report.hpp"
#include "runner/merge.hpp"
#include "runner/orchestrator.hpp"
#include "runner/sweep_runner.hpp"
#include "scenario/suite.hpp"

#ifndef FLEXNET_BIN_DIR
#define FLEXNET_BIN_DIR "."
#endif

// Sanitizer instrumentation slows the child flexnet_run processes ~10x,
// so a healthy shard can miss a tight stale window between heartbeats
// (HeartbeatWriter throttles to one record per second). Widen the
// staleness threshold accordingly; the SIGSTOPped shard is still killed
// at any threshold because its heartbeat never advances at all.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FLEXNET_UNDER_SANITIZER 1
#endif
#endif
#if !defined(FLEXNET_UNDER_SANITIZER) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define FLEXNET_UNDER_SANITIZER 1
#endif
#ifdef FLEXNET_UNDER_SANITIZER
constexpr double kStaleTimeoutS = 10.0;
#else
constexpr double kStaleTimeoutS = 1.0;
#endif

namespace flexnet {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void remove_shard_files(const std::vector<ShardCommand>& commands) {
  for (const ShardCommand& cmd : commands) {
    std::remove(cmd.journal.c_str());
    std::remove(cmd.heartbeat.c_str());
    std::remove((cmd.journal + ".log").c_str());
  }
}

// ---------------------------------------------------------------------------
// Command planning.

TEST(PlanShardCommands, BuildsTheOneBasedShardSpellings) {
  OrchestrateSpec spec;
  spec.run_binary = "/opt/bin/flexnet_run";
  spec.suite_path = "suite.json";
  spec.overrides = {"warmup=200", "measure=400"};
  spec.journal_prefix = "/tmp/sweep";
  spec.shards = 3;
  spec.jobs_per_shard = 4;

  const std::vector<ShardCommand> commands = plan_shard_commands(spec);
  ASSERT_EQ(commands.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    const ShardCommand& cmd = commands[static_cast<std::size_t>(i)];
    EXPECT_EQ(cmd.shard_index, i);
    EXPECT_EQ(cmd.shard_count, 3);
    const std::string journal =
        "/tmp/sweep-" + std::to_string(i + 1) + ".journal";
    EXPECT_EQ(cmd.journal, journal);
    EXPECT_EQ(cmd.heartbeat, journal + ".hb");
    const std::vector<std::string> want = {
        "/opt/bin/flexnet_run", "suite.json",
        "--shard",     std::to_string(i + 1) + "/3",
        "--checkpoint", journal,
        "--heartbeat", journal + ".hb",
        "--jobs",      "4",
        "warmup=200",  "measure=400"};
    EXPECT_EQ(cmd.argv, want) << "shard " << i;
    EXPECT_TRUE(cmd.env.empty());
  }
}

TEST(RenderCommand, QuotesOnlyWhatTheShellNeeds) {
  EXPECT_EQ(shell_quote("plain-token_1.2/x"), "plain-token_1.2/x");
  EXPECT_EQ(shell_quote("has space"), "'has space'");
  EXPECT_EQ(shell_quote("don't"), "'don'\\''t'");
  EXPECT_EQ(shell_quote(""), "''");

  ShardCommand cmd;
  cmd.argv = {"/bin/run", "my suite.json", "--jobs", "2"};
  cmd.env = {"FLEXNET_FAULT_CRASH_AFTER_JOBS=3"};
  EXPECT_EQ(render_command(cmd),
            "FLEXNET_FAULT_CRASH_AFTER_JOBS=3 /bin/run 'my suite.json' "
            "--jobs 2");
}

// ---------------------------------------------------------------------------
// The supervision loop against a scripted launcher: no processes, no
// sleeps (zero backoff/poll), every branch deterministic.

/// In-memory launcher: each shard's attempts are scripted as decoded exit
/// codes. kNeverExits keeps the fake process "running" until kill().
class ScriptedLauncher : public Launcher {
 public:
  static constexpr int kNeverExits = 1000000;
  static constexpr int kLaunchFails = 1000001;

  explicit ScriptedLauncher(std::vector<std::vector<int>> script)
      : script_(std::move(script)) {}

  long launch(const ShardCommand& cmd, int attempt) override {
    const auto& attempts = script_[static_cast<std::size_t>(cmd.shard_index)];
    const int code = attempt <= static_cast<int>(attempts.size())
                         ? attempts[static_cast<std::size_t>(attempt - 1)]
                         : 0;
    if (code == kLaunchFails) return -1;
    procs_.push_back(Proc{code, /*reaped=*/false, /*killed=*/false});
    launches.push_back(cmd.shard_index);
    return static_cast<long>(procs_.size());  // 1-based handle
  }

  bool poll(long handle, int* exit_code) override {
    Proc& p = procs_[static_cast<std::size_t>(handle - 1)];
    if (p.exit == kNeverExits && !p.killed) return false;
    *exit_code = p.killed ? -SIGKILL : p.exit;
    p.reaped = true;
    return true;
  }

  void kill(long handle) override {
    procs_[static_cast<std::size_t>(handle - 1)].killed = true;
    ++kills;
  }

  std::vector<int> launches;  ///< shard index per launch, in order
  int kills = 0;

 private:
  struct Proc {
    int exit;
    bool reaped;
    bool killed;
  };
  std::vector<std::vector<int>> script_;
  std::vector<Proc> procs_;
};

std::vector<ShardCommand> fake_commands(int shards) {
  OrchestrateSpec spec;
  spec.run_binary = "/nonexistent/flexnet_run";
  spec.suite_path = "suite.json";
  spec.journal_prefix = temp_path("orc_fake");
  spec.shards = shards;
  return plan_shard_commands(spec);
}

OrchestratorOptions fast_options() {
  OrchestratorOptions opt;
  opt.backoff_initial_s = 0.0;
  opt.poll_interval_s = 0.0;
  opt.stale_timeout_s = 3600.0;  // staleness off unless a test wants it
  opt.quiet = true;
  return opt;
}

TEST(OrchestratorLoop, TransientDeathRetriesWithResumeAndCompletes) {
  // Shard 2 dies by signal once, then completes; the others are clean.
  ScriptedLauncher launcher({{0}, {-SIGKILL, 0}, {exit_code::kIo, 0}});
  Orchestrator orchestrator(fake_commands(3), fast_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();

  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.error.empty());
  ASSERT_EQ(report.shards.size(), 3u);
  EXPECT_EQ(report.shards[0].attempts, 1);
  EXPECT_EQ(report.shards[1].attempts, 2);
  EXPECT_EQ(report.shards[2].attempts, 2) << "exit 4 (I/O) must retry";
  for (const ShardOutcome& shard : report.shards) {
    EXPECT_TRUE(shard.completed);
    EXPECT_EQ(shard.last_exit, 0);
  }
}

TEST(OrchestratorLoop, DeadlockOnlyExitCompletesAndIsFlagged) {
  ScriptedLauncher launcher({{exit_code::kDeadlockOnly}, {0}});
  Orchestrator orchestrator(fake_commands(2), fast_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();
  EXPECT_TRUE(report.ok);
  EXPECT_TRUE(report.deadlock_only);
  EXPECT_EQ(report.shards[0].attempts, 1) << "exit 3 is completion, not "
                                             "failure";
}

TEST(OrchestratorLoop, PermanentFailureAbortsEverythingWithoutRetry) {
  // Shard 1 hits a config error; shard 2 would run forever. The
  // orchestrator must not retry exit 2, and must kill shard 2 rather
  // than hang.
  ScriptedLauncher launcher(
      {{exit_code::kConfig}, {ScriptedLauncher::kNeverExits}});
  Orchestrator orchestrator(fake_commands(2), fast_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();

  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("shard 1/2"), std::string::npos)
      << report.error;
  EXPECT_EQ(report.shards[0].attempts, 1) << "permanent failures never retry";
  EXPECT_FALSE(report.shards[0].completed);
  EXPECT_FALSE(report.shards[1].completed);
  EXPECT_GE(launcher.kills, 1) << "the running shard must be killed";
}

TEST(OrchestratorLoop, RetryBudgetExhaustionIsFatal) {
  ScriptedLauncher launcher({{-SIGKILL, -SIGKILL, -SIGKILL, -SIGKILL}, {0}});
  OrchestratorOptions opt = fast_options();
  opt.max_restarts = 2;
  Orchestrator orchestrator(fake_commands(2), opt, &launcher);
  const OrchestratorReport report = orchestrator.run();

  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.shards[0].attempts, 3) << "1 launch + max_restarts";
  EXPECT_NE(report.shards[0].failure.find("retry budget exhausted"),
            std::string::npos)
      << report.shards[0].failure;
}

TEST(OrchestratorLoop, LaunchFailureConsumesTheBudgetAsTransient) {
  ScriptedLauncher launcher({{ScriptedLauncher::kLaunchFails, 0}});
  Orchestrator orchestrator(fake_commands(1), fast_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.shards[0].attempts, 2);
}

TEST(OrchestratorLoop, StaleHeartbeatGetsTheShardKilledAndRestarted) {
  // Attempt 1 never exits and never heartbeats (the files do not exist);
  // the orchestrator must kill it on the stale timeout and relaunch.
  ScriptedLauncher launcher({{ScriptedLauncher::kNeverExits, 0}});
  OrchestratorOptions opt = fast_options();
  opt.stale_timeout_s = 0.2;
  opt.poll_interval_s = 0.02;
  const std::vector<ShardCommand> commands = fake_commands(1);
  remove_shard_files(commands);
  Orchestrator orchestrator(commands, opt, &launcher);
  const OrchestratorReport report = orchestrator.run();

  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.shards[0].attempts, 2);
  EXPECT_EQ(report.shards[0].stale_kills, 1);
  EXPECT_EQ(launcher.kills, 1);
}

// ---------------------------------------------------------------------------
// The fault-injection battery: real flexnet_run shard processes under the
// real ForkExecLauncher, on the shipped smoke suite at test-speed cycle
// counts. Every scenario must end with merged rows — and the canonical
// JSON report built from them — byte-identical to the serial run.

class OrchestratorBattery : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    fast_ = new Options();
    fast_->set("warmup", "200");
    fast_->set("measure", "400");
    suite_ = new MaterializedSuite(
        materialize_for_run(suite_path(), fast_));
    serial_ = new std::vector<SweepResult>(SweepRunner(1).run(
        suite_->grid, suite_->spec.loads, suite_->seeds));
  }

  static void TearDownTestSuite() {
    delete fast_;
    delete suite_;
    delete serial_;
  }

  static std::string suite_path() {
    return std::string(FLEXNET_SUITE_DIR) + "/smoke_tiny.json";
  }

  static OrchestrateSpec base_spec(const std::string& prefix) {
    OrchestrateSpec spec;
    spec.run_binary = std::string(FLEXNET_BIN_DIR) + "/flexnet_run";
    spec.suite_path = suite_path();
    spec.overrides = {"warmup=200", "measure=400"};
    spec.journal_prefix = temp_path(prefix);
    spec.shards = 3;
    spec.jobs_per_shard = 2;
    return spec;
  }

  static OrchestratorOptions battery_options() {
    OrchestratorOptions opt;
    opt.backoff_initial_s = 0.05;
    opt.poll_interval_s = 0.02;
    opt.stale_timeout_s = 3600.0;
    opt.quiet = true;
    return opt;
  }

  /// The byte-comparison surface: fixed meta, zero wall-clock — equality
  /// means every row value, label, and load is bit-identical.
  static std::string canonical_report(const std::vector<SweepResult>& rows) {
    JsonReport report;
    report.set_meta("suite", "smoke_tiny.json");
    report.set_meta("seeds", static_cast<std::int64_t>(suite_->seeds));
    report.add_sweep("battery", rows, 0.0);
    return report.to_json();
  }

  /// Merges the orchestrated journals through the production merge
  /// library into sweep rows (and optionally a merged journal).
  static std::vector<SweepResult> merge_rows(
      const std::vector<std::string>& journals,
      const std::string& out_journal = "") {
    MergeOutputs outputs;
    outputs.out_journal = out_journal;
    outputs.json_path = "";
    outputs.verbose = false;
    const MergeSummary summary =
        merge_suite_journals(*suite_, suite_path(), journals, outputs);
    EXPECT_TRUE(summary.complete())
        << summary.missing_jobs << " jobs missing after orchestration";

    std::vector<ShardJournal> shards;
    for (const std::string& path : journals)
      shards.push_back({path, read_journal(path)});
    const auto records = merge_journals(shards);
    const std::size_t num_points =
        suite_->grid.size() * suite_->spec.loads.size();
    std::vector<std::vector<SimResult>> per_seed(
        num_points,
        std::vector<SimResult>(static_cast<std::size_t>(suite_->seeds)));
    for (const auto& rec : records)
      per_seed[rec.point][static_cast<std::size_t>(rec.seed)] = rec.result;
    return SweepRunner::reduce_slots(suite_->grid, suite_->spec.loads,
                                     per_seed);
  }

  static Options* fast_;
  static MaterializedSuite* suite_;
  static std::vector<SweepResult>* serial_;
};

Options* OrchestratorBattery::fast_ = nullptr;
MaterializedSuite* OrchestratorBattery::suite_ = nullptr;
std::vector<SweepResult>* OrchestratorBattery::serial_ = nullptr;

/// ForkExecLauncher that injects the deterministic crash-after-K-jobs
/// fault (FLEXNET_FAULT_CRASH_AFTER_JOBS, runner/sweep_runner.cpp) into
/// chosen attempts of one shard — the test-battery hook the ISSUE asks
/// for: the shard SIGKILLs itself after its K-th completed job.
class FaultySimLauncher : public ForkExecLauncher {
 public:
  FaultySimLauncher(int target_shard, long crash_after_jobs,
                    int crash_attempts)
      : target_(target_shard),
        crash_after_(crash_after_jobs),
        crash_attempts_(crash_attempts) {}

  long launch(const ShardCommand& cmd, int attempt) override {
    if (cmd.shard_index == target_ && attempt <= crash_attempts_) {
      ShardCommand faulty = cmd;
      faulty.env.push_back("FLEXNET_FAULT_CRASH_AFTER_JOBS=" +
                           std::to_string(crash_after_));
      return ForkExecLauncher::launch(faulty, attempt);
    }
    return ForkExecLauncher::launch(cmd, attempt);
  }

 private:
  int target_;
  long crash_after_;
  int crash_attempts_;
};

/// ForkExecLauncher that SIGSTOPs one shard's first attempt right after
/// launch: the process is alive but wedged — only the stale-heartbeat
/// path can recover it.
class StallingLauncher : public ForkExecLauncher {
 public:
  explicit StallingLauncher(int target_shard) : target_(target_shard) {}

  long launch(const ShardCommand& cmd, int attempt) override {
    const long handle = ForkExecLauncher::launch(cmd, attempt);
    if (cmd.shard_index == target_ && attempt == 1 && handle > 0)
      ::kill(static_cast<pid_t>(handle), SIGSTOP);
    return handle;
  }

 private:
  int target_;
};

TEST_F(OrchestratorBattery, CleanThreeShardRunMergesIdenticalToSerial) {
  const OrchestrateSpec spec = base_spec("orc_clean");
  const std::vector<ShardCommand> commands = plan_shard_commands(spec);
  remove_shard_files(commands);

  ForkExecLauncher launcher;
  Orchestrator orchestrator(commands, battery_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();

  ASSERT_TRUE(report.ok) << report.error;
  for (const ShardOutcome& shard : report.shards)
    EXPECT_EQ(shard.attempts, 1);
  EXPECT_EQ(canonical_report(merge_rows(report.journals)),
            canonical_report(*serial_))
      << "orchestrated merge must equal the serial run byte for byte";
  remove_shard_files(commands);
}

TEST_F(OrchestratorBattery, SigkilledShardRestartsResumesAndMergesIdentically) {
  // Shard 2's first attempt SIGKILLs itself after 2 completed jobs —
  // stdio buffers lost, journal possibly torn mid-record. The restart
  // must resume from the journal and the final merge must still be
  // byte-identical to serial; the merged journal must be byte-identical
  // to a clean run's merged journal too.
  const OrchestrateSpec spec = base_spec("orc_kill");
  const std::vector<ShardCommand> commands = plan_shard_commands(spec);
  remove_shard_files(commands);
  const std::string merged = temp_path("orc_kill_merged.journal");
  const std::string merged_clean = temp_path("orc_kill_clean.journal");
  std::remove(merged.c_str());
  std::remove(merged_clean.c_str());

  FaultySimLauncher launcher(/*target_shard=*/1, /*crash_after_jobs=*/2,
                             /*crash_attempts=*/1);
  Orchestrator orchestrator(commands, battery_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();

  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.shards[1].attempts, 2) << "the victim must restart once";
  EXPECT_EQ(report.shards[0].attempts, 1);
  EXPECT_EQ(report.shards[2].attempts, 1);

  EXPECT_EQ(canonical_report(merge_rows(report.journals, merged)),
            canonical_report(*serial_))
      << "a killed-and-resumed shard must not change a single byte";

  // Byte-identical merged journal: rerun the same sweep clean and merge.
  const OrchestrateSpec clean_spec = base_spec("orc_kill2");
  const std::vector<ShardCommand> clean_commands =
      plan_shard_commands(clean_spec);
  remove_shard_files(clean_commands);
  ForkExecLauncher clean_launcher;
  Orchestrator clean_orc(clean_commands, battery_options(), &clean_launcher);
  const OrchestratorReport clean_report = clean_orc.run();
  ASSERT_TRUE(clean_report.ok) << clean_report.error;
  merge_rows(clean_report.journals, merged_clean);
  EXPECT_EQ(read_file(merged), read_file(merged_clean))
      << "merged journal after a crash must equal the clean run's bytes";

  remove_shard_files(commands);
  remove_shard_files(clean_commands);
  std::remove(merged.c_str());
  std::remove(merged_clean.c_str());
}

TEST_F(OrchestratorBattery, SigstoppedShardIsKilledForStalenessAndRecovers) {
  // Shard 1 is SIGSTOPped at launch: alive by every process-level check,
  // but its heartbeat never advances. The stale timeout must kill and
  // restart it, and the sweep must still merge byte-identical to serial.
  const OrchestrateSpec spec = base_spec("orc_stall");
  const std::vector<ShardCommand> commands = plan_shard_commands(spec);
  remove_shard_files(commands);

  StallingLauncher launcher(/*target_shard=*/0);
  OrchestratorOptions opt = battery_options();
  opt.stale_timeout_s = kStaleTimeoutS;
  Orchestrator orchestrator(commands, opt, &launcher);
  const OrchestratorReport report = orchestrator.run();

  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.shards[0].attempts, 2);
  EXPECT_EQ(report.shards[0].stale_kills, 1)
      << "the restart must be attributed to the stale heartbeat";
  EXPECT_EQ(canonical_report(merge_rows(report.journals)),
            canonical_report(*serial_));
  remove_shard_files(commands);
}

TEST_F(OrchestratorBattery, CorruptJournalIsPermanentNotARetryStorm) {
  // Shard 1's journal is pre-corrupted garbage: flexnet_run exits 2
  // (permanent — rerunning repeats it forever). The orchestrator must
  // fail fast without burning the retry budget and kill the other
  // shards, leaving their journals resumable.
  const OrchestrateSpec spec = base_spec("orc_corrupt");
  const std::vector<ShardCommand> commands = plan_shard_commands(spec);
  remove_shard_files(commands);
  write_file(commands[0].journal, "this is not a checkpoint journal\n");

  ForkExecLauncher launcher;
  Orchestrator orchestrator(commands, battery_options(), &launcher);
  const OrchestratorReport report = orchestrator.run();

  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.shards[0].attempts, 1)
      << "exit 2 must not be retried: " << report.shards[0].failure;
  EXPECT_EQ(report.shards[0].last_exit, exit_code::kConfig);
  EXPECT_NE(report.error.find("shard 1/3"), std::string::npos)
      << report.error;
  remove_shard_files(commands);
}

}  // namespace
}  // namespace flexnet
